//! Shared command-line handling for the harness binaries.
//!
//! Every binary historically parsed its own arguments with a slightly
//! different dialect (panics vs `exit(2)`, `--csv` here but not there,
//! variant names that had to be spelled exactly like the figure labels).
//! This module gives them one dialect:
//!
//! * `--jobs <N>` / `--jobs=N` (or the `SDO_JOBS` environment variable)
//!   selects the worker count, on every simulating binary;
//! * `--csv` / `--csv=runs` selects machine-readable output where the
//!   binary supports it;
//! * `--metrics <path>` writes the merged [`MetricsSnapshot`] of every
//!   simulation the binary ran, as JSON;
//! * `--seed <N>` / `--seed=N` (or the `SDO_SEED` environment variable)
//!   seeds randomized workloads and fuzz campaigns reproducibly, on
//!   binaries that declare support;
//! * `--server <sock>` submits every simulation batch to the
//!   `sdo-serve` daemon listening on that Unix socket, `--store <dir>`
//!   memoizes results in a local content-addressed store, and
//!   `--no-cache` bypasses lookups — the uniform client dialect, on
//!   every simulating binary;
//! * `--help` prints a uniform usage page and exits 0;
//! * usage errors exit 2, runtime errors (I/O, simulation hangs) exit 1.
//!
//! Variant and attack-model names are parsed leniently:
//! `Static L1` == `static-l1` == `static_l1` == `StaticL1`, and
//! `STT{ld+fp}` == `stt-ld-fp` == `stt_ld_fp`.

use crate::config::Variant;
use crate::engine::{JobPool, JOBS_ENV};
use sdo_uarch::{AttackModel, MetricsSnapshot};

/// Environment variable consulted when `--seed` is absent (mirrors
/// `SDO_JOBS` for `--jobs`).
pub const SEED_ENV: &str = "SDO_SEED";

/// Which CSV flags a binary accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsvSupport {
    /// No CSV output; `--csv` is a usage error.
    None,
    /// `--csv` only (a single table); `--csv=runs` is a usage error.
    FigureOnly,
    /// `--csv` (the figure matrix) and `--csv=runs` (the per-run dump).
    FigureAndRuns,
}

/// The CSV mode requested on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsvMode {
    /// `--csv`: the figure-shaped matrix.
    Figure,
    /// `--csv=runs`: one row per simulation.
    Runs,
}

/// Static description of one binary: name, summary, and which common
/// flags it supports. Drives both parsing and the `--help` page.
#[derive(Debug, Clone, Copy)]
pub struct BinSpec {
    /// Binary name as invoked (`fig6`, `run`, ...).
    pub name: &'static str,
    /// One-line summary shown at the top of `--help`.
    pub about: &'static str,
    /// Positional-argument syntax for the usage line, e.g.
    /// `"<file.s> [options]"`; use `"[options]"` when there are none.
    pub usage_args: &'static str,
    /// Whether `--jobs` is accepted (false only for non-simulating
    /// binaries like `table1`).
    pub jobs: bool,
    /// Which CSV flags are accepted.
    pub csv: CsvSupport,
    /// Whether `--metrics <path>` is accepted.
    pub metrics: bool,
    /// Whether `--seed <N>` is accepted (binaries with randomized
    /// workloads or fuzz campaigns).
    pub seed: bool,
    /// Whether `--no-skip` is accepted (simulating binaries, where it
    /// disables quiescence fast-forward; outputs are byte-identical
    /// either way, so this is purely a verification escape hatch).
    pub no_skip: bool,
    /// Whether the client flags (`--server`, `--store`, `--no-cache`)
    /// are accepted — binaries whose simulations route through a
    /// [`crate::Runner`] and can therefore run locally, memoized, or as
    /// a thin client of an `sdo-serve` daemon.
    pub client: bool,
    /// Binary-specific options as `(flag, help)` pairs, appended to the
    /// options table of `--help`.
    pub extra_options: &'static [(&'static str, &'static str)],
}

impl BinSpec {
    /// Renders the uniform `--help` page.
    #[must_use]
    pub fn usage(&self) -> String {
        let mut out = format!("usage: {} {}\n\n{}\n\noptions:\n", self.name, self.usage_args, self.about);
        let mut opts: Vec<(&str, String)> = Vec::new();
        if self.jobs {
            opts.push((
                "--jobs <N>",
                format!("worker threads (default: ${JOBS_ENV} or all cores)"),
            ));
        }
        if self.csv != CsvSupport::None {
            opts.push(("--csv", "print the figure as CSV on stdout".into()));
        }
        if self.csv == CsvSupport::FigureAndRuns {
            opts.push(("--csv=runs", "print the full per-run dump as CSV".into()));
        }
        if self.metrics {
            opts.push((
                "--metrics <path>",
                "write the merged metric snapshot as JSON".into(),
            ));
        }
        if self.seed {
            opts.push((
                "--seed <N>",
                format!("RNG seed for reproducible campaigns (default: ${SEED_ENV} or 0)"),
            ));
        }
        if self.no_skip {
            opts.push((
                "--no-skip",
                "disable quiescence fast-forward (byte-identical output, slower)".into(),
            ));
        }
        if self.client {
            opts.push((
                "--server <sock>",
                "submit simulations to the sdo-serve daemon at this Unix socket".into(),
            ));
            opts.push((
                "--store <dir>",
                "memoize results in a content-addressed store at this directory".into(),
            ));
            opts.push((
                "--no-cache",
                "bypass store lookups (fresh results are still saved)".into(),
            ));
        }
        for &(flag, help) in self.extra_options {
            opts.push((flag, help.into()));
        }
        opts.push(("--help", "show this help and exit".into()));
        for (flag, help) in opts {
            out.push_str(&format!("  {flag:<18} {help}\n"));
        }
        out
    }

    /// Prints `msg` and a `--help` pointer to stderr, then exits 2 (the
    /// uniform usage-error path).
    pub fn usage_error(&self, msg: &str) -> ! {
        eprintln!("{}: {msg}", self.name);
        eprintln!("try '{} --help'", self.name);
        std::process::exit(2);
    }

    /// Prints `msg` to stderr and exits 1 (the uniform runtime-error
    /// path: I/O failures, simulation hangs).
    pub fn runtime_error(&self, msg: &str) -> ! {
        eprintln!("{}: {msg}", self.name);
        std::process::exit(1);
    }
}

/// The common flags of one invocation, parsed; binary-specific arguments
/// are left in [`CommonArgs::rest`] in their original order.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Worker pool from `--jobs` / `SDO_JOBS` / available parallelism.
    pub pool: JobPool,
    /// CSV mode, if requested.
    pub csv: Option<CsvMode>,
    /// `--metrics` output path, if requested.
    pub metrics: Option<String>,
    /// RNG seed from `--seed` / `SDO_SEED`, if either was given.
    pub seed: Option<u64>,
    /// `--no-skip`: run with quiescence fast-forward disabled.
    pub no_skip: bool,
    /// `--server`: Unix-socket path of the `sdo-serve` daemon to submit
    /// simulations to.
    pub server: Option<String>,
    /// `--store`: directory of the content-addressed result store.
    pub store: Option<String>,
    /// `--no-cache`: bypass store lookups (fresh results still saved).
    pub no_cache: bool,
    /// Arguments the common layer did not consume.
    pub rest: Vec<String>,
}

/// Why [`CommonArgs::try_parse`] stopped: help requested, or a malformed
/// invocation (with the message to print).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h` was present: print usage, exit 0.
    Help,
    /// Malformed invocation: print the message, exit 2.
    Usage(String),
}

impl CommonArgs {
    /// Parses the process arguments against `spec`, handling `--help`
    /// (exit 0) and usage errors (exit 2) uniformly.
    #[must_use]
    pub fn parse(spec: &BinSpec) -> CommonArgs {
        match Self::try_parse(spec, std::env::args().skip(1).collect()) {
            Ok(args) => args,
            Err(CliError::Help) => {
                print!("{}", spec.usage());
                std::process::exit(0);
            }
            Err(CliError::Usage(msg)) => spec.usage_error(&msg),
        }
    }

    /// Pure parsing core of [`CommonArgs::parse`] (testable: no process
    /// exit, no environment reads beyond the `SDO_JOBS` fallback).
    ///
    /// # Errors
    ///
    /// [`CliError::Help`] when `--help` is present; [`CliError::Usage`]
    /// on a malformed or unsupported common flag.
    pub fn try_parse(spec: &BinSpec, args: Vec<String>) -> Result<CommonArgs, CliError> {
        let mut jobs: Option<usize> = None;
        let mut csv = None;
        let mut metrics = None;
        let mut seed: Option<u64> = None;
        let mut no_skip = false;
        let mut server: Option<String> = None;
        let mut store: Option<String> = None;
        let mut no_cache = false;
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help),
                "--jobs" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::Usage("--jobs requires a value".into()))?;
                    jobs = Some(parse_jobs(spec, &v)?);
                }
                "--csv" => {
                    require_csv(spec)?;
                    csv = Some(CsvMode::Figure);
                }
                "--csv=runs" => {
                    require_csv(spec)?;
                    if spec.csv == CsvSupport::FigureOnly {
                        return Err(CliError::Usage(
                            "--csv=runs is not supported here (use --csv)".into(),
                        ));
                    }
                    csv = Some(CsvMode::Runs);
                }
                "--metrics" => {
                    if !spec.metrics {
                        return Err(CliError::Usage("--metrics is not supported here".into()));
                    }
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::Usage("--metrics requires a path".into()))?;
                    metrics = Some(v);
                }
                "--seed" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::Usage("--seed requires a value".into()))?;
                    seed = Some(parse_seed(spec, &v)?);
                }
                "--no-skip" => {
                    if !spec.no_skip {
                        return Err(CliError::Usage("--no-skip is not supported here".into()));
                    }
                    no_skip = true;
                }
                // The uniform client flags. Bins with `client: false` get
                // them passed through in `rest` instead: either they
                // declare their own meaning (the serve daemon's --store)
                // or `reject_rest` turns them into a usage error.
                "--server" if spec.client => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::Usage("--server requires a socket path".into()))?;
                    server = Some(v);
                }
                "--store" if spec.client => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::Usage("--store requires a directory".into()))?;
                    store = Some(v);
                }
                "--no-cache" if spec.client => {
                    no_cache = true;
                }
                other => {
                    if let Some(v) = other.strip_prefix("--jobs=") {
                        jobs = Some(parse_jobs(spec, v)?);
                    } else if let Some(v) = other.strip_prefix("--metrics=") {
                        if !spec.metrics {
                            return Err(CliError::Usage(
                                "--metrics is not supported here".into(),
                            ));
                        }
                        metrics = Some(v.to_string());
                    } else if let Some(v) = other.strip_prefix("--seed=") {
                        seed = Some(parse_seed(spec, v)?);
                    } else if let Some(v) = other.strip_prefix("--server=") {
                        if spec.client {
                            server = Some(v.to_string());
                        } else {
                            rest.push(arg);
                        }
                    } else if let Some(v) = other.strip_prefix("--store=") {
                        if spec.client {
                            store = Some(v.to_string());
                        } else {
                            rest.push(arg);
                        }
                    } else if let Some(v) = other.strip_prefix("--csv=") {
                        require_csv(spec)?;
                        return Err(CliError::Usage(format!(
                            "unknown CSV mode '{v}' (expected --csv or --csv=runs)"
                        )));
                    } else {
                        rest.push(arg);
                    }
                }
            }
        }
        if server.is_some() && store.is_some() {
            return Err(CliError::Usage(
                "--store conflicts with --server (the daemon owns its own store)".into(),
            ));
        }
        let pool = jobs.map_or_else(JobPool::from_env, JobPool::new);
        if seed.is_none() {
            // Environment fallback, mirroring --jobs / SDO_JOBS.
            seed = std::env::var(SEED_ENV).ok().and_then(|v| v.parse().ok());
        }
        Ok(CommonArgs { pool, csv, metrics, seed, no_skip, server, store, no_cache, rest })
    }

    /// The machine configuration after applying `--no-skip`: `base` with
    /// quiescence fast-forward disabled when the flag was given.
    #[must_use]
    pub fn sim_config(&self, base: crate::SimConfig) -> crate::SimConfig {
        base.with_fast_forward(!self.no_skip)
    }

    /// The effective campaign seed: `--seed`, else `SDO_SEED`, else 0.
    #[must_use]
    pub fn seed_or_default(&self) -> u64 {
        self.seed.unwrap_or(0)
    }

    /// Builds the [`crate::Runner`] the client flags selected: a thin
    /// client of the daemon at `--server`, a store-memoized local runner
    /// for `--store`, and a plain local runner otherwise. `--no-skip`
    /// applies to `base` first (via [`CommonArgs::sim_config`]).
    ///
    /// # Errors
    ///
    /// [`crate::SimError::Store`] when the `--store` directory cannot be
    /// opened.
    pub fn try_runner(&self, base: crate::SimConfig) -> Result<crate::Runner, crate::SimError> {
        let cfg = self.sim_config(base);
        let runner = match (&self.server, &self.store) {
            (Some(path), _) => crate::Runner::server(cfg, path.clone()),
            (None, Some(dir)) => crate::Runner::with_store(cfg, dir)?,
            (None, None) => crate::Runner::local(cfg),
        };
        Ok(runner.no_cache(self.no_cache))
    }

    /// [`CommonArgs::try_runner`] with the uniform exit-1 path on store
    /// failure — the form the binaries call.
    #[must_use]
    pub fn runner(&self, spec: &BinSpec, base: crate::SimConfig) -> crate::Runner {
        self.try_runner(base).unwrap_or_else(|e| spec.runtime_error(&e.to_string()))
    }

    /// Prints the runner's one-line cache report to stderr, when it has
    /// one (any store- or server-backed invocation). CI greps this line
    /// to assert "second pass: 100% cache hits".
    pub fn report_cache(&self, runner: &crate::Runner) {
        if let Some(line) = runner.cache_report() {
            eprintln!("{line}");
        }
    }

    /// Usage-errors (exit 2) if any unconsumed arguments remain — the
    /// final call of binaries with no positional arguments.
    pub fn reject_rest(&self, spec: &BinSpec) {
        if let Some(extra) = self.rest.first() {
            spec.usage_error(&format!("unexpected argument '{extra}'"));
        }
    }

    /// Writes `m` as JSON to the `--metrics` path, if one was given.
    /// Exits 1 on I/O failure.
    pub fn write_metrics(&self, spec: &BinSpec, m: &MetricsSnapshot) {
        if let Some(path) = &self.metrics {
            if let Err(e) = std::fs::write(path, m.to_json()) {
                spec.runtime_error(&format!("cannot write {path}: {e}"));
            }
            eprintln!("wrote {path}");
        }
    }
}

fn require_csv(spec: &BinSpec) -> Result<(), CliError> {
    if spec.csv == CsvSupport::None {
        return Err(CliError::Usage("--csv is not supported here".into()));
    }
    Ok(())
}

fn parse_jobs(_spec: &BinSpec, v: &str) -> Result<usize, CliError> {
    match v.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(CliError::Usage(format!("--jobs expects a positive integer, got '{v}'"))),
    }
}

fn parse_seed(spec: &BinSpec, v: &str) -> Result<u64, CliError> {
    if !spec.seed {
        return Err(CliError::Usage("--seed is not supported here".into()));
    }
    v.parse::<u64>()
        .map_err(|_| CliError::Usage(format!("--seed expects an unsigned integer, got '{v}'")))
}

/// Normalization used for lenient name matching: lowercase with every
/// separator (space, `-`, `_`, `{`, `}`, `+`) removed, so `Static L1`,
/// `static-l1` and `static_l1` all compare equal.
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| !matches!(c, ' ' | '-' | '_' | '{' | '}' | '+'))
        .flat_map(char::to_lowercase)
        .collect()
}

/// Parses a Table II variant name leniently (figure label, `snake_case`
/// slug, or any hyphen/underscore/brace-free spelling of either).
///
/// # Errors
///
/// An error message listing every accepted canonical spelling.
pub fn parse_variant(name: &str) -> Result<Variant, String> {
    let wanted = normalize(name);
    for v in Variant::ALL {
        if normalize(v.name()) == wanted || normalize(v.slug()) == wanted {
            return Ok(v);
        }
    }
    Err(format!(
        "unknown variant '{name}'; options: {} (hyphen/underscore spellings accepted, e.g. {})",
        Variant::ALL.map(Variant::name).join(", "),
        Variant::ALL.map(Variant::slug).join(", "),
    ))
}

/// Parses an attack-model name (case-insensitive).
///
/// # Errors
///
/// An error message listing the accepted names.
pub fn parse_attack(name: &str) -> Result<AttackModel, String> {
    match normalize(name).as_str() {
        "spectre" => Ok(AttackModel::Spectre),
        "futuristic" => Ok(AttackModel::Futuristic),
        _ => Err(format!("unknown attack model '{name}'; options: spectre, futuristic")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: BinSpec = BinSpec {
        name: "testbin",
        about: "test",
        usage_args: "[options]",
        jobs: true,
        csv: CsvSupport::FigureAndRuns,
        metrics: true,
        seed: true,
        no_skip: true,
        client: true,
        extra_options: &[],
    };

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_all_common_flags() {
        let a = CommonArgs::try_parse(
            &SPEC,
            strings(&["--jobs", "3", "--csv=runs", "--metrics", "m.json", "pos"]),
        )
        .unwrap();
        assert_eq!(a.pool.jobs(), 3);
        assert_eq!(a.csv, Some(CsvMode::Runs));
        assert_eq!(a.metrics.as_deref(), Some("m.json"));
        assert_eq!(a.rest, strings(&["pos"]));
    }

    #[test]
    fn equals_forms_work() {
        let a = CommonArgs::try_parse(&SPEC, strings(&["--jobs=5", "--metrics=x.json", "--csv"]))
            .unwrap();
        assert_eq!(a.pool.jobs(), 5);
        assert_eq!(a.csv, Some(CsvMode::Figure));
        assert_eq!(a.metrics.as_deref(), Some("x.json"));
        assert!(a.rest.is_empty());
    }

    #[test]
    fn help_and_usage_errors_are_reported() {
        assert!(matches!(
            CommonArgs::try_parse(&SPEC, strings(&["--help"])),
            Err(CliError::Help)
        ));
        assert!(matches!(
            CommonArgs::try_parse(&SPEC, strings(&["--jobs", "zero"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            CommonArgs::try_parse(&SPEC, strings(&["--jobs"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            CommonArgs::try_parse(&SPEC, strings(&["--csv=bogus"])),
            Err(CliError::Usage(_))
        ));
        let no_csv = BinSpec { csv: CsvSupport::None, ..SPEC };
        assert!(matches!(
            CommonArgs::try_parse(&no_csv, strings(&["--csv"])),
            Err(CliError::Usage(_))
        ));
        let figure_only = BinSpec { csv: CsvSupport::FigureOnly, ..SPEC };
        let a = CommonArgs::try_parse(&figure_only, strings(&["--csv"])).unwrap();
        assert_eq!(a.csv, Some(CsvMode::Figure));
        assert!(matches!(
            CommonArgs::try_parse(&figure_only, strings(&["--csv=runs"])),
            Err(CliError::Usage(_))
        ));
        assert!(figure_only.usage().contains("--csv") && !figure_only.usage().contains("--csv=runs"));
        let no_metrics = BinSpec { metrics: false, ..SPEC };
        assert!(matches!(
            CommonArgs::try_parse(&no_metrics, strings(&["--metrics", "m"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn seed_flag_parses_both_forms() {
        let a = CommonArgs::try_parse(&SPEC, strings(&["--seed", "7"])).unwrap();
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.seed_or_default(), 7);
        let a = CommonArgs::try_parse(&SPEC, strings(&["--seed=99"])).unwrap();
        assert_eq!(a.seed, Some(99));
        assert!(matches!(
            CommonArgs::try_parse(&SPEC, strings(&["--seed", "minus-one"])),
            Err(CliError::Usage(_))
        ));
        let no_seed = BinSpec { seed: false, ..SPEC };
        assert!(matches!(
            CommonArgs::try_parse(&no_seed, strings(&["--seed", "7"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn usage_page_lists_supported_flags() {
        let u = SPEC.usage();
        assert!(u.starts_with("usage: testbin"));
        for flag in ["--jobs", "--csv", "--csv=runs", "--metrics", "--seed", "--no-skip", "--help"]
        {
            assert!(u.contains(flag), "missing {flag} in:\n{u}");
        }
        let bare = BinSpec {
            jobs: false,
            csv: CsvSupport::None,
            metrics: false,
            seed: false,
            no_skip: false,
            client: false,
            ..SPEC
        };
        let u = bare.usage();
        assert!(!u.contains("--jobs") && !u.contains("--csv") && !u.contains("--metrics"));
        assert!(!u.contains("--seed"));
        assert!(!u.contains("--no-skip"));
        assert!(!u.contains("--server") && !u.contains("--store") && !u.contains("--no-cache"));
        assert!(u.contains("--help"));
    }

    #[test]
    fn client_flags_parse_and_build_runners() {
        let u = SPEC.usage();
        for flag in ["--server <sock>", "--store <dir>", "--no-cache"] {
            assert!(u.contains(flag), "missing {flag} in:\n{u}");
        }

        let a = CommonArgs::try_parse(&SPEC, strings(&["--server", "/tmp/sdo.sock"])).unwrap();
        assert_eq!(a.server.as_deref(), Some("/tmp/sdo.sock"));
        let a = CommonArgs::try_parse(&SPEC, strings(&["--server=/tmp/s2.sock"])).unwrap();
        assert_eq!(a.server.as_deref(), Some("/tmp/s2.sock"));
        let a =
            CommonArgs::try_parse(&SPEC, strings(&["--store=/tmp/sdo-store", "--no-cache"]))
                .unwrap();
        assert_eq!(a.store.as_deref(), Some("/tmp/sdo-store"));
        assert!(a.no_cache);

        // The flags are mutually exclusive: the daemon owns its store.
        assert!(matches!(
            CommonArgs::try_parse(&SPEC, strings(&["--server", "s", "--store", "d"])),
            Err(CliError::Usage(_))
        ));
        // Gated on the spec — but by pass-through, not a hard error:
        // non-client bins see the raw flags in `rest`, so the serve
        // daemon can give --store its own meaning while everything else
        // rejects them via `reject_rest`.
        let no_client = BinSpec { client: false, ..SPEC };
        for args in [&["--server", "s"][..], &["--store", "d"], &["--no-cache"], &["--store=d"]] {
            let a = CommonArgs::try_parse(&no_client, strings(args)).unwrap();
            assert!(a.server.is_none() && a.store.is_none() && !a.no_cache);
            assert_eq!(a.rest.len(), args.len(), "flags pass through verbatim: {args:?}");
        }

        // Flag-to-backend mapping (plain local runner has no report;
        // store-backed and server-backed runners do).
        let plain = CommonArgs::try_parse(&SPEC, strings(&[])).unwrap();
        let runner = plain.try_runner(crate::SimConfig::tiny()).unwrap();
        assert!(runner.cache_report().is_none());
        let remote = CommonArgs::try_parse(&SPEC, strings(&["--server=/tmp/nowhere"])).unwrap();
        let runner = remote.try_runner(crate::SimConfig::tiny()).unwrap();
        assert!(runner.cache_report().is_some());
    }

    #[test]
    fn no_skip_flag_parses_and_maps_to_sim_config() {
        let a = CommonArgs::try_parse(&SPEC, strings(&[])).unwrap();
        assert!(!a.no_skip);
        assert!(a.sim_config(crate::SimConfig::tiny()).fast_forward);
        let a = CommonArgs::try_parse(&SPEC, strings(&["--no-skip"])).unwrap();
        assert!(a.no_skip);
        assert!(!a.sim_config(crate::SimConfig::tiny()).fast_forward);
        let unsupported = BinSpec { no_skip: false, ..SPEC };
        assert!(matches!(
            CommonArgs::try_parse(&unsupported, strings(&["--no-skip"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn variant_aliases_parse() {
        // Every canonical spelling and the issue's reported aliases.
        for v in Variant::ALL {
            assert_eq!(parse_variant(v.name()).unwrap(), v, "{}", v.name());
            assert_eq!(parse_variant(v.slug()).unwrap(), v, "{}", v.slug());
        }
        assert_eq!(parse_variant("static-l1").unwrap(), Variant::StaticL1);
        assert_eq!(parse_variant("static_l2").unwrap(), Variant::StaticL2);
        assert_eq!(parse_variant("StaticL3").unwrap(), Variant::StaticL3);
        assert_eq!(parse_variant("stt-ld-fp").unwrap(), Variant::SttLdFp);
        assert_eq!(parse_variant("STT{ld}").unwrap(), Variant::SttLd);
        assert_eq!(parse_variant("HYBRID").unwrap(), Variant::Hybrid);
        let err = parse_variant("nope").unwrap_err();
        assert!(err.contains("Static L1") && err.contains("stt_ld_fp"), "{err}");
    }

    #[test]
    fn attack_names_parse() {
        assert_eq!(parse_attack("spectre").unwrap(), AttackModel::Spectre);
        assert_eq!(parse_attack("Futuristic").unwrap(), AttackModel::Futuristic);
        assert!(parse_attack("meltdown").is_err());
    }
}
