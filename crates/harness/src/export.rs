//! CSV export of sweep results, for plotting outside the simulator
//! (the figures in the paper are bar/scatter charts of exactly these
//! columns).

use crate::config::Variant;
use crate::experiments::SuiteResults;
use crate::sim::RunResult;

/// Header of the per-run CSV produced by [`runs_csv`].
pub const RUNS_CSV_HEADER: &str = "attack,workload,variant,cycles,normalized,committed,ipc,\
     delayed_loads,delay_cycles,obl_issued,obl_success,obl_fail,dram_predictions,\
     mshr_retries,validations,exposures,validation_stall_cycles,imprecision_cycles,\
     squash_branch,squash_obl_fail,squash_validation,squash_consistency,squash_fp,\
     predictions,precise,accurate,l1_hits,l1_misses,l2_hits,l3_hits,l3_misses";

fn run_row(r: &RunResult, baseline: &RunResult) -> String {
    format!(
        "{},{},{},{},{:.6},{},{:.4},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        r.attack,
        r.workload,
        r.variant.name().replace(' ', "_"),
        r.cycles,
        r.normalized_to(baseline),
        r.core.committed,
        r.core.ipc(),
        r.core.delayed_loads,
        r.core.delay_cycles,
        r.core.obl.issued,
        r.core.obl.success,
        r.core.obl.fail,
        r.core.obl.dram_predictions,
        r.core.obl.mshr_retries,
        r.core.obl.validations,
        r.core.obl.exposures,
        r.core.obl.validation_stall_cycles,
        r.core.obl.imprecision_cycles,
        r.core.squashes.branch,
        r.core.squashes.obl_fail,
        r.core.squashes.validation,
        r.core.squashes.consistency,
        r.core.squashes.fp_fail,
        r.core.obl.predictions,
        r.core.obl.precise,
        r.core.obl.accurate,
        r.mem.l1_hits,
        r.mem.l1_misses,
        r.mem.l2_hits,
        r.mem.l3_hits,
        r.mem.l3_misses,
    )
}

/// Serializes every run of a sweep as CSV (one row per
/// attack × workload × variant), normalized against each workload's
/// `Unsafe` run.
#[must_use]
pub fn runs_csv(results: &SuiteResults) -> String {
    let mut out = String::from(RUNS_CSV_HEADER);
    out.push('\n');
    for (_, per_workload) in &results.runs {
        for runs in per_workload {
            let baseline = &runs[0];
            for r in runs {
                out.push_str(&run_row(r, baseline));
                out.push('\n');
            }
        }
    }
    out
}

/// Serializes the Figure 6 matrix (normalized execution times) as CSV:
/// one row per workload per attack model, one column per non-baseline
/// variant.
#[must_use]
pub fn fig6_csv(results: &SuiteResults) -> String {
    let mut out = String::from("attack,workload");
    for v in Variant::ALL.iter().skip(1) {
        out.push(',');
        out.push_str(&v.name().replace(' ', "_"));
    }
    out.push('\n');
    for (attack, per_workload) in &results.runs {
        for (w, runs) in results.workloads.iter().zip(per_workload) {
            out.push_str(&format!("{attack},{w}"));
            for r in runs.iter().skip(1) {
                out.push_str(&format!(",{:.6}", r.normalized_to(&runs[0])));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::sim::Simulator;
    use sdo_uarch::AttackModel;

    fn tiny_results() -> SuiteResults {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = sdo_workloads::kernels::l1_resident(200, 1);
        let runs = AttackModel::ALL
            .into_iter()
            .map(|a| (a, vec![sim.run_all_variants(&prog, a).unwrap()]))
            .collect();
        SuiteResults { runs, workloads: vec!["l1_resident".into()] }
    }

    #[test]
    fn runs_csv_has_one_row_per_run_plus_header() {
        let r = tiny_results();
        let csv = runs_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * Variant::ALL.len());
        assert_eq!(lines[0].split(',').count(), RUNS_CSV_HEADER.split(',').count());
        for row in &lines[1..] {
            assert_eq!(
                row.split(',').count(),
                lines[0].split(',').count(),
                "ragged row: {row}"
            );
        }
        assert!(csv.contains("Static_L2"));
    }

    #[test]
    fn fig6_csv_is_a_matrix() {
        let r = tiny_results();
        let csv = fig6_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + one workload × two models
        assert!(lines[0].starts_with("attack,workload,STT{ld}"));
        // The Unsafe column is the implicit 1.0 baseline and is omitted.
        assert!(!lines[0].contains("Unsafe"));
    }

    #[test]
    fn csv_values_parse_back_as_numbers() {
        let r = tiny_results();
        let csv = runs_csv(&r);
        for row in csv.lines().skip(1) {
            for (i, field) in row.split(',').enumerate() {
                if i >= 3 {
                    assert!(
                        field.parse::<f64>().is_ok(),
                        "field {i} ('{field}') is not numeric in: {row}"
                    );
                }
            }
        }
    }
}
