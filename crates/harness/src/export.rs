//! CSV export of sweep results, for plotting outside the simulator
//! (the figures in the paper are bar/scatter charts of exactly these
//! columns), plus JSON export of harness throughput measurements.

use crate::config::Variant;
use crate::engine::Throughput;
use crate::experiments::{PentestOutcome, SuiteResults};
use crate::sim::RunResult;
use std::time::Duration;

/// One column of the per-run CSV: a stable name paired with the
/// extractor that renders its cell, so the header and the rows are
/// derived from the same table and can never drift apart.
#[derive(Debug, Clone, Copy)]
pub struct RunColumn {
    /// Column name, exactly as it appears in the CSV header.
    pub name: &'static str,
    /// Renders the cell for one run; `baseline` is the same workload's
    /// `Unsafe` run (used by derived columns like `normalized`).
    pub extract: fn(r: &RunResult, baseline: &RunResult) -> String,
}

/// The per-run CSV schema, in column order. Adding a column here updates
/// the header, every row, and the schema tests at once.
pub const RUN_COLUMNS: &[RunColumn] = &[
    RunColumn { name: "attack", extract: |r, _| r.attack.to_string() },
    RunColumn { name: "workload", extract: |r, _| r.workload.clone() },
    RunColumn { name: "variant", extract: |r, _| r.variant.name().replace(' ', "_") },
    RunColumn { name: "cycles", extract: |r, _| r.cycles.to_string() },
    RunColumn { name: "normalized", extract: |r, b| format!("{:.6}", r.normalized_to(b)) },
    RunColumn { name: "committed", extract: |r, _| r.core.committed.to_string() },
    RunColumn { name: "ipc", extract: |r, _| format!("{:.4}", r.core.ipc()) },
    RunColumn { name: "delayed_loads", extract: |r, _| r.core.delayed_loads.to_string() },
    RunColumn { name: "delay_cycles", extract: |r, _| r.core.delay_cycles.to_string() },
    RunColumn { name: "obl_issued", extract: |r, _| r.core.obl.issued.to_string() },
    RunColumn { name: "obl_success", extract: |r, _| r.core.obl.success.to_string() },
    RunColumn { name: "obl_fail", extract: |r, _| r.core.obl.fail.to_string() },
    RunColumn { name: "dram_predictions", extract: |r, _| r.core.obl.dram_predictions.to_string() },
    RunColumn { name: "mshr_retries", extract: |r, _| r.core.obl.mshr_retries.to_string() },
    RunColumn { name: "validations", extract: |r, _| r.core.obl.validations.to_string() },
    RunColumn { name: "exposures", extract: |r, _| r.core.obl.exposures.to_string() },
    RunColumn {
        name: "validation_stall_cycles",
        extract: |r, _| r.core.obl.validation_stall_cycles.to_string(),
    },
    RunColumn {
        name: "imprecision_cycles",
        extract: |r, _| r.core.obl.imprecision_cycles.to_string(),
    },
    RunColumn { name: "squash_branch", extract: |r, _| r.core.squashes.branch.to_string() },
    RunColumn { name: "squash_obl_fail", extract: |r, _| r.core.squashes.obl_fail.to_string() },
    RunColumn { name: "squash_validation", extract: |r, _| r.core.squashes.validation.to_string() },
    RunColumn {
        name: "squash_consistency",
        extract: |r, _| r.core.squashes.consistency.to_string(),
    },
    RunColumn { name: "squash_fp", extract: |r, _| r.core.squashes.fp_fail.to_string() },
    RunColumn { name: "predictions", extract: |r, _| r.core.obl.predictions.to_string() },
    RunColumn { name: "precise", extract: |r, _| r.core.obl.precise.to_string() },
    RunColumn { name: "accurate", extract: |r, _| r.core.obl.accurate.to_string() },
    RunColumn { name: "l1_hits", extract: |r, _| r.mem.l1_hits.to_string() },
    RunColumn { name: "l1_misses", extract: |r, _| r.mem.l1_misses.to_string() },
    RunColumn { name: "l2_hits", extract: |r, _| r.mem.l2_hits.to_string() },
    RunColumn { name: "l3_hits", extract: |r, _| r.mem.l3_hits.to_string() },
    RunColumn { name: "l3_misses", extract: |r, _| r.mem.l3_misses.to_string() },
];

/// Header of the per-run CSV produced by [`runs_csv`]: the
/// [`RUN_COLUMNS`] names, comma-joined.
#[must_use]
pub fn runs_csv_header() -> String {
    RUN_COLUMNS.iter().map(|c| c.name).collect::<Vec<_>>().join(",")
}

/// Renders one [`RUN_COLUMNS`] row; `baseline` is the `Unsafe` run the
/// derived columns normalize against.
#[must_use]
pub fn run_row(r: &RunResult, baseline: &RunResult) -> String {
    RUN_COLUMNS.iter().map(|c| (c.extract)(r, baseline)).collect::<Vec<_>>().join(",")
}

/// Serializes every run of a sweep as CSV (one row per
/// attack × workload × variant), normalized against each workload's
/// `Unsafe` run.
#[must_use]
pub fn runs_csv(results: &SuiteResults) -> String {
    let mut out = runs_csv_header();
    out.push('\n');
    for (_, per_workload) in &results.runs {
        for runs in per_workload {
            let baseline = &runs[0];
            for r in runs {
                out.push_str(&run_row(r, baseline));
                out.push('\n');
            }
        }
    }
    out
}

/// One column of a typed CSV table: a stable name paired with the
/// extractor that renders its cell from one row value. The same
/// descriptor-table shape as [`RunColumn`] (whose extractor takes an
/// extra baseline argument and so stays its own type), reusable by any
/// crate exporting rows of its own type — `sdo-analyze` builds its
/// findings CSV from `Column<Finding>`.
pub struct Column<T> {
    /// Column name, exactly as it appears in the CSV header.
    pub name: &'static str,
    /// Renders the cell for one row value.
    pub extract: fn(row: &T) -> String,
}

// Manual impls: derives would demand `T: Debug/Clone/Copy`, which the
// fields (a static str and a fn pointer) never need.
impl<T> std::fmt::Debug for Column<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Column").field("name", &self.name).finish_non_exhaustive()
    }
}

impl<T> Clone for Column<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Column<T> {}

/// Renders a header + one row per value from a [`Column`] table — the
/// shared body of every typed CSV export.
#[must_use]
pub fn table_csv<T>(columns: &[Column<T>], rows: &[T]) -> String {
    let mut out = columns.iter().map(|c| c.name).collect::<Vec<_>>().join(",");
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = columns.iter().map(|c| (c.extract)(row)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// One column of the pentest verdict CSV.
pub type PentestColumn = Column<PentestOutcome>;

/// The pentest verdict CSV schema, in column order: the per-variant
/// covert-channel readout plus the victim run's headline numbers.
pub const PENTEST_COLUMNS: &[PentestColumn] = &[
    PentestColumn { name: "attack", extract: |o| o.attack.to_string() },
    PentestColumn { name: "variant", extract: |o| o.variant.name().replace(' ', "_") },
    PentestColumn { name: "leaked", extract: |o| u64::from(o.leaked).to_string() },
    PentestColumn { name: "visible_bytes", extract: |o| o.recovered.len().to_string() },
    PentestColumn { name: "cycles", extract: |o| o.result.cycles.to_string() },
    PentestColumn { name: "committed", extract: |o| o.result.core.committed.to_string() },
];

/// Header of the pentest verdict CSV: the [`PENTEST_COLUMNS`] names,
/// comma-joined.
#[must_use]
pub fn pentest_csv_header() -> String {
    PENTEST_COLUMNS.iter().map(|c| c.name).collect::<Vec<_>>().join(",")
}

/// Serializes pentest outcomes as CSV, one row per (attack, variant).
#[must_use]
pub fn pentest_csv(outcomes: &[PentestOutcome]) -> String {
    table_csv(PENTEST_COLUMNS, outcomes)
}

/// Serializes the Figure 6 matrix (normalized execution times) as CSV:
/// one row per workload per attack model, one column per non-baseline
/// variant.
#[must_use]
pub fn fig6_csv(results: &SuiteResults) -> String {
    let mut out = String::from("attack,workload");
    for v in Variant::ALL.iter().skip(1) {
        out.push(',');
        out.push_str(&v.name().replace(' ', "_"));
    }
    out.push('\n');
    for (attack, per_workload) in &results.runs {
        for (w, runs) in results.workloads.iter().zip(per_workload) {
            out.push_str(&format!("{attack},{w}"));
            for r in runs.iter().skip(1) {
                out.push_str(&format!(",{:.6}", r.normalized_to(&runs[0])));
            }
            out.push('\n');
        }
    }
    out
}

/// Serializes one [`Throughput`] as a JSON object (hand-rolled — the
/// workspace has no serde and every field is a plain number).
#[must_use]
pub fn throughput_json(t: &Throughput) -> String {
    format!(
        "{{\"jobs\": {}, \"sims\": {}, \"cycles\": {}, \"wall_secs\": {:.6}, \
         \"sims_per_sec\": {:.3}, \"cycles_per_sec\": {:.1}}}",
        t.jobs,
        t.sims,
        t.cycles,
        t.wall.as_secs_f64(),
        t.sims_per_sec(),
        t.cycles_per_sec(),
    )
}

/// Quiescence fast-forward effectiveness on one workload class:
/// simulated cycles that were skipped (jumped over in one step) out of
/// the class's total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipRatio {
    /// Workload class name (one of `sdo_workloads::WORKLOAD_CLASSES`).
    pub class: &'static str,
    /// Cycles covered by fast-forward jumps.
    pub skipped: u64,
    /// Total simulated cycles of the class.
    pub cycles: u64,
}

impl SkipRatio {
    /// Skipped cycles as a fraction of the class total.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.skipped as f64 / (self.cycles as f64).max(1.0)
    }
}

/// The fast-forward section of `BENCH_suite.json`: the DRAM-bound class
/// timed with skipping on and off (same simulated cycles by the
/// cycle-exactness invariant, so the `cycles_per_sec` ratio is the pure
/// wall-clock win), plus the per-class skip ratios of the full suite.
#[derive(Debug, Clone, PartialEq)]
pub struct FastForwardBench {
    /// DRAM-bound kernels with quiescence fast-forward on.
    pub dram_skip: Throughput,
    /// The same kernels with `--no-skip` semantics.
    pub dram_noskip: Throughput,
    /// Per-class skipped/total cycles from the skip-on suite run.
    pub ratios: Vec<SkipRatio>,
}

/// The serve/result-store section of `BENCH_suite.json`: the identical
/// figure-6 batch timed against a cold store (every run simulated, then
/// saved) and against the warm store it just filled (every run a cache
/// hit, zero simulations), plus the warm pass's hit/miss counts so the
/// speedup can be read against its hit rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBench {
    /// The batch against an empty store: simulate + save.
    pub cold: Throughput,
    /// The same batch against the filled store: load only.
    pub warm: Throughput,
    /// Store hits during the warm pass (should equal the batch size).
    pub warm_hits: u64,
    /// Store misses during the warm pass (should be zero).
    pub warm_misses: u64,
}

/// Static-scan throughput over the RV32 corpus, written by
/// `analyze --scan --bench-out` as the `scan` section of
/// `BENCH_suite.json` (the only section not produced by the `all`
/// bin, so it is appended/replaced in place by
/// [`with_scan_section`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanBench {
    /// Programs scanned.
    pub programs: u64,
    /// Source instructions scanned (µops, post-lowering).
    pub insts: u64,
    /// Variant-independent gadget chains found.
    pub chains: u64,
    /// Wall time of the scan pass.
    pub wall: Duration,
}

impl ScanBench {
    /// Scanned instructions per wall second.
    #[must_use]
    pub fn insts_per_sec(&self) -> f64 {
        self.insts as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Inserts (or replaces) the `scan` section in a
/// [`bench_suite_json`]-formatted document. The section is always kept
/// last, immediately before the closing brace, so re-running the
/// scanner updates it idempotently without disturbing the `all`-bin
/// sections.
#[must_use]
pub fn with_scan_section(suite_json: &str, s: &ScanBench) -> String {
    // Cut a previous scan section (it is always last), else strip
    // exactly the outermost closing brace.
    let base = match suite_json.find(",\n  \"scan\": {") {
        Some(i) => &suite_json[..i],
        None => {
            let t = suite_json.trim_end();
            t.strip_suffix('}').map_or(t, str::trim_end)
        }
    };
    // No comma when the document had no prior section (bare `{`).
    let sep = if base.trim_end().ends_with('{') { "" } else { "," };
    format!(
        "{base}{sep}\n  \"scan\": {{\n    \"programs\": {},\n    \"insts\": {},\n    \
         \"chains\": {},\n    \"wall_secs\": {:.6},\n    \"insts_per_sec\": {:.3}\n  }}\n}}\n",
        s.programs,
        s.insts,
        s.chains,
        s.wall.as_secs_f64(),
        s.insts_per_sec(),
    )
}

/// Serializes a benchmark session — named per-phase [`Throughput`]s, an
/// optional `--jobs 1` vs `--jobs N` suite speedup, an optional
/// fast-forward effectiveness section, an optional per-workload-class
/// busy-cycle (skip-off) throughput section, an optional per-class
/// throughput section for the translated RV32 corpus, and an optional
/// cold/warm result-store section — as the `BENCH_suite.json` document
/// the `all` binary emits.
#[must_use]
pub fn bench_suite_json(
    phases: &[(&str, Throughput)],
    speedup: Option<(Throughput, Throughput)>,
    fast_forward: Option<&FastForwardBench>,
    busy_cycle: Option<&[(&'static str, Throughput)]>,
    rv32: Option<&[(&'static str, Throughput)]>,
    serve: Option<&ServeBench>,
) -> String {
    let total_wall: f64 = phases.iter().map(|(_, t)| t.wall.as_secs_f64()).sum();
    let total_sims: u64 = phases.iter().map(|(_, t)| t.sims).sum();
    let total_cycles: u64 = phases.iter().map(|(_, t)| t.cycles).sum();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"total_wall_secs\": {total_wall:.6},\n"));
    out.push_str(&format!("  \"total_sims\": {total_sims},\n"));
    out.push_str(&format!("  \"total_cycles\": {total_cycles},\n"));
    out.push_str(&format!(
        "  \"total_sims_per_sec\": {:.3},\n",
        total_sims as f64 / total_wall.max(1e-9)
    ));
    // Recorded so a speedup number can be read against the hardware that
    // produced it — 4 jobs on a 1-core host legitimately measure ~1.0x.
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    out.push_str("  \"phases\": {\n");
    for (i, (name, t)) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {}{comma}\n", throughput_json(t)));
    }
    out.push_str("  }");
    if let Some((serial, parallel)) = speedup {
        out.push_str(",\n  \"suite_speedup\": {\n");
        out.push_str(&format!("    \"serial\": {},\n", throughput_json(&serial)));
        out.push_str(&format!("    \"parallel\": {},\n", throughput_json(&parallel)));
        out.push_str(&format!(
            "    \"speedup\": {:.3}\n",
            serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9)
        ));
        out.push_str("  }");
    }
    if let Some(ff) = fast_forward {
        out.push_str(",\n  \"fast_forward\": {\n");
        out.push_str(&format!(
            "    \"dram_bound_skip\": {},\n",
            throughput_json(&ff.dram_skip)
        ));
        out.push_str(&format!(
            "    \"dram_bound_noskip\": {},\n",
            throughput_json(&ff.dram_noskip)
        ));
        out.push_str(&format!(
            "    \"dram_cycles_per_sec_speedup\": {:.3},\n",
            ff.dram_skip.cycles_per_sec() / ff.dram_noskip.cycles_per_sec().max(1e-9)
        ));
        out.push_str("    \"skip_ratio\": {\n");
        for (i, r) in ff.ratios.iter().enumerate() {
            let comma = if i + 1 < ff.ratios.len() { "," } else { "" };
            out.push_str(&format!(
                "      \"{}\": {{\"skipped\": {}, \"cycles\": {}, \"ratio\": {:.4}}}{comma}\n",
                r.class,
                r.skipped,
                r.cycles,
                r.ratio(),
            ));
        }
        out.push_str("    }\n  }");
    }
    if let Some(classes) = busy_cycle {
        // Skip-off per class: the raw engine cost baseline that the
        // data-oriented core work targets (and future PRs regress
        // against) — fast-forward cannot mask a slowdown here.
        out.push_str(",\n  \"busy_cycle\": {\n");
        for (i, (class, t)) in classes.iter().enumerate() {
            let comma = if i + 1 < classes.len() { "," } else { "" };
            out.push_str(&format!("    \"{class}\": {}{comma}\n", throughput_json(t)));
        }
        out.push_str("  }");
    }
    if let Some(classes) = rv32 {
        // Same skip-off measurement over the translated RV32 corpus:
        // real compiled programs cost more µops per source instruction
        // (sign-extension, jalr table hops), so this tracks the
        // frontend's lowering overhead separately from the mini-ISA
        // kernels.
        out.push_str(",\n  \"rv32\": {\n");
        for (i, (class, t)) in classes.iter().enumerate() {
            let comma = if i + 1 < classes.len() { "," } else { "" };
            out.push_str(&format!("    \"{class}\": {}{comma}\n", throughput_json(t)));
        }
        out.push_str("  }");
    }
    if let Some(s) = serve {
        // Cold fills the content-addressed store; warm replays the same
        // batch from it. The wall-clock ratio is the figure-regeneration
        // win a persistent daemon (or any `--store` client) gets.
        out.push_str(",\n  \"serve\": {\n");
        out.push_str(&format!("    \"cold\": {},\n", throughput_json(&s.cold)));
        out.push_str(&format!("    \"warm\": {},\n", throughput_json(&s.warm)));
        out.push_str(&format!("    \"warm_hits\": {},\n", s.warm_hits));
        out.push_str(&format!("    \"warm_misses\": {},\n", s.warm_misses));
        out.push_str(&format!(
            "    \"warm_speedup\": {:.3}\n",
            s.cold.wall.as_secs_f64() / s.warm.wall.as_secs_f64().max(1e-9)
        ));
        out.push_str("  }");
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::sim::{RunRequest, Simulator};
    use sdo_uarch::AttackModel;
    use std::time::Duration;

    fn tiny_results() -> SuiteResults {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = sdo_workloads::kernels::l1_resident(200, 1);
        let runs = AttackModel::ALL
            .into_iter()
            .map(|a| {
                let per: Vec<RunResult> = Variant::ALL
                    .iter()
                    .map(|&v| {
                        sim.run(&RunRequest::program(&prog).variant(v).attack(a))
                            .unwrap()
                            .into_result()
                    })
                    .collect();
                (a, vec![per])
            })
            .collect();
        SuiteResults { runs, workloads: vec!["l1_resident".into()] }
    }

    #[test]
    fn runs_csv_has_one_row_per_run_plus_header() {
        let r = tiny_results();
        let csv = runs_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * Variant::ALL.len());
        assert_eq!(lines[0].split(',').count(), RUN_COLUMNS.len());
        for row in &lines[1..] {
            assert_eq!(
                row.split(',').count(),
                lines[0].split(',').count(),
                "ragged row: {row}"
            );
        }
        assert!(csv.contains("Static_L2"));
    }

    /// Pins the schema: the descriptor-table header must stay
    /// byte-identical to the historical format-string export.
    #[test]
    fn runs_csv_header_is_stable() {
        assert_eq!(
            runs_csv_header(),
            "attack,workload,variant,cycles,normalized,committed,ipc,\
             delayed_loads,delay_cycles,obl_issued,obl_success,obl_fail,dram_predictions,\
             mshr_retries,validations,exposures,validation_stall_cycles,imprecision_cycles,\
             squash_branch,squash_obl_fail,squash_validation,squash_consistency,squash_fp,\
             predictions,precise,accurate,l1_hits,l1_misses,l2_hits,l3_hits,l3_misses"
        );
        let mut names: Vec<_> = RUN_COLUMNS.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RUN_COLUMNS.len(), "duplicate column name");
    }

    /// Pins the pentest verdict schema the same way.
    #[test]
    fn pentest_csv_header_is_stable() {
        assert_eq!(pentest_csv_header(), "attack,variant,leaked,visible_bytes,cycles,committed");
    }

    #[test]
    fn pentest_csv_rows_match_schema() {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = sdo_workloads::kernels::l1_resident(200, 1);
        let result = sim
            .run(&RunRequest::program(&prog).variant(Variant::Unsafe).attack(AttackModel::Spectre))
            .unwrap()
            .into_result();
        let outcome = PentestOutcome {
            variant: Variant::Unsafe,
            attack: AttackModel::Spectre,
            recovered: vec![0x2A],
            leaked: true,
            result,
        };
        let csv = pentest_csv(&[outcome]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].split(',').count(), PENTEST_COLUMNS.len());
        assert!(lines[1].starts_with("Spectre,Unsafe,1,1,"));
    }

    #[test]
    fn fig6_csv_is_a_matrix() {
        let r = tiny_results();
        let csv = fig6_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + one workload × two models
        assert!(lines[0].starts_with("attack,workload,STT{ld}"));
        // The Unsafe column is the implicit 1.0 baseline and is omitted.
        assert!(!lines[0].contains("Unsafe"));
    }

    #[test]
    fn throughput_json_is_wellformed() {
        let t = Throughput {
            jobs: 4,
            sims: 160,
            cycles: 1_000_000,
            wall: Duration::from_millis(500),
        };
        let j = throughput_json(&t);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"jobs\": 4"));
        assert!(j.contains("\"sims\": 160"));
        assert!(j.contains("\"sims_per_sec\": 320.000"));
    }

    #[test]
    fn bench_suite_json_structure() {
        let t1 = Throughput { jobs: 1, sims: 10, cycles: 100, wall: Duration::from_secs(4) };
        let t4 = Throughput { jobs: 4, sims: 10, cycles: 100, wall: Duration::from_secs(1) };
        let j = bench_suite_json(&[("suite", t4), ("pentest", t1)], Some((t1, t4)), None, None, None, None);
        assert!(j.contains("\"phases\""));
        assert!(j.contains("\"suite\""));
        assert!(j.contains("\"pentest\""));
        assert!(j.contains("\"suite_speedup\""));
        assert!(j.contains("\"speedup\": 4.000"));
        assert!(j.contains("\"total_sims\": 20"));
        assert!(j.contains("\"host_cpus\""));
        assert!(!j.contains("\"fast_forward\""));
        // Balanced braces: crude but effective well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn scan_section_appends_and_replaces_idempotently() {
        let t1 = Throughput { jobs: 1, sims: 10, cycles: 100, wall: Duration::from_secs(4) };
        let t4 = Throughput { jobs: 4, sims: 10, cycles: 100, wall: Duration::from_secs(1) };
        let base = bench_suite_json(&[("suite", t4)], Some((t1, t4)), None, None, None, None);
        let s = ScanBench { programs: 5, insts: 300, chains: 1, wall: Duration::from_millis(10) };

        let once = with_scan_section(&base, &s);
        assert!(once.contains("\"scan\": {"));
        assert!(once.contains("\"programs\": 5"));
        assert!(once.contains("\"insts_per_sec\": 30000.000"));
        assert!(once.ends_with("  }\n}\n"));
        assert_eq!(once.matches('{').count(), once.matches('}').count());
        // The sections produced by the `all` bin are untouched.
        assert!(once.contains("\"suite_speedup\""));
        assert!(once.contains("\"phases\""));

        let twice = with_scan_section(&once, &ScanBench { programs: 6, ..s });
        assert_eq!(twice.matches("\"scan\"").count(), 1, "replaced, not duplicated");
        assert!(twice.contains("\"programs\": 6"));
        assert!(twice.contains("\"suite_speedup\""));
        assert_eq!(twice.matches('{').count(), twice.matches('}').count());

        // A missing suite file degrades to a bare skeleton: still
        // valid JSON, no leading comma.
        let fresh = with_scan_section("{\n}\n", &s);
        assert!(fresh.starts_with("{\n  \"scan\": {"));
        assert_eq!(fresh.matches('{').count(), fresh.matches('}').count());
    }

    #[test]
    fn bench_suite_json_fast_forward_section() {
        let t1 = Throughput { jobs: 1, sims: 10, cycles: 100, wall: Duration::from_secs(4) };
        let skip = Throughput { jobs: 1, sims: 48, cycles: 600, wall: Duration::from_secs(1) };
        let noskip = Throughput { jobs: 1, sims: 48, cycles: 600, wall: Duration::from_secs(3) };
        let ff = FastForwardBench {
            dram_skip: skip,
            dram_noskip: noskip,
            ratios: vec![
                SkipRatio { class: "dram_bound", skipped: 75, cycles: 100 },
                SkipRatio { class: "cache_resident", skipped: 0, cycles: 50 },
            ],
        };
        let j = bench_suite_json(&[("suite", t1)], None, Some(&ff), None, None, None);
        assert!(j.contains("\"fast_forward\""));
        assert!(j.contains("\"dram_bound_skip\""));
        assert!(j.contains("\"dram_bound_noskip\""));
        assert!(j.contains("\"dram_cycles_per_sec_speedup\": 3.000"));
        assert!(j.contains("\"dram_bound\": {\"skipped\": 75, \"cycles\": 100, \"ratio\": 0.7500}"));
        assert!(j.contains("\"cache_resident\": {\"skipped\": 0, \"cycles\": 50, \"ratio\": 0.0000}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn bench_suite_json_busy_cycle_section() {
        let t1 = Throughput { jobs: 1, sims: 10, cycles: 100, wall: Duration::from_secs(4) };
        let branchy = Throughput { jobs: 1, sims: 32, cycles: 2000, wall: Duration::from_secs(1) };
        let cache = Throughput { jobs: 1, sims: 48, cycles: 4000, wall: Duration::from_secs(2) };
        let classes = [("branchy", branchy), ("cache_resident", cache)];
        let j = bench_suite_json(&[("suite", t1)], None, None, Some(&classes), None, None);
        assert!(j.contains("\"busy_cycle\""));
        assert!(j.contains("\"branchy\": {\"jobs\": 1, \"sims\": 32"));
        assert!(j.contains("\"cache_resident\": {\"jobs\": 1, \"sims\": 48"));
        assert!(j.contains("\"cycles_per_sec\": 2000.0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn bench_suite_json_rv32_section() {
        let t1 = Throughput { jobs: 1, sims: 10, cycles: 100, wall: Duration::from_secs(4) };
        let branchy = Throughput { jobs: 1, sims: 48, cycles: 9000, wall: Duration::from_secs(3) };
        let cache = Throughput { jobs: 1, sims: 32, cycles: 1000, wall: Duration::from_secs(1) };
        let classes = [("branchy", branchy), ("cache_resident", cache)];
        let j = bench_suite_json(&[("suite", t1)], None, None, None, Some(&classes), None);
        assert!(j.contains("\"rv32\""));
        assert!(!j.contains("\"busy_cycle\""));
        assert!(j.contains("\"branchy\": {\"jobs\": 1, \"sims\": 48"));
        assert!(j.contains("\"cache_resident\": {\"jobs\": 1, \"sims\": 32"));
        assert!(j.contains("\"cycles_per_sec\": 3000.0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn bench_suite_json_serve_section() {
        let t1 = Throughput { jobs: 1, sims: 10, cycles: 100, wall: Duration::from_secs(4) };
        let cold = Throughput { jobs: 4, sims: 160, cycles: 8000, wall: Duration::from_secs(8) };
        let warm = Throughput { jobs: 4, sims: 0, cycles: 8000, wall: Duration::from_secs(1) };
        let serve = ServeBench { cold, warm, warm_hits: 160, warm_misses: 0 };
        let j = bench_suite_json(&[("suite", t1)], None, None, None, None, Some(&serve));
        assert!(j.contains("\"serve\""));
        assert!(j.contains("\"cold\": {\"jobs\": 4, \"sims\": 160"));
        assert!(j.contains("\"warm\": {\"jobs\": 4, \"sims\": 0"));
        assert!(j.contains("\"warm_hits\": 160"));
        assert!(j.contains("\"warm_misses\": 0"));
        assert!(j.contains("\"warm_speedup\": 8.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn csv_values_parse_back_as_numbers() {
        let r = tiny_results();
        let csv = runs_csv(&r);
        for row in csv.lines().skip(1) {
            for (i, field) in row.split(',').enumerate() {
                if i >= 3 {
                    assert!(
                        field.parse::<f64>().is_ok(),
                        "field {i} ('{field}') is not numeric in: {row}"
                    );
                }
            }
        }
    }
}
