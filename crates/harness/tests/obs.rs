//! Integration tests for the observability layer: the probe must be a
//! pure observer (figures byte-identical with it on or off), metric
//! snapshots must be deterministic at any worker count, and the event
//! trace must survive a JSONL round trip from a real simulated run.

use sdo_harness::experiments::{
    fig6_report, fig7_report, fig8_report, run_suite_on, table3_report,
};
use sdo_harness::export::{fig6_csv, runs_csv, runs_csv_header, RUN_COLUMNS};
use sdo_harness::{JobPool, Runner, RunRequest, SimConfig, Simulator, Variant};
use sdo_mem::CacheLevel;
use sdo_uarch::{AttackModel, EventTrace, ObsConfig};
use sdo_workloads::kernels::{hash_lookup, l1_resident, stream};
use sdo_workloads::Workload;

/// The same fast three-kernel suite as `tests/parallel.rs`.
fn mini_suite() -> Vec<Workload> {
    vec![
        Workload::new("l1_resident", l1_resident(200, 10)),
        Workload::new("stream", stream(512, 1, 2)).warmed(0x20_0000, 512 * 8, CacheLevel::L3),
        Workload::new("hash_lookup", hash_lookup(1 << 10, 120, 5))
            .warmed(0x80_0000, (1 << 10) * 8, CacheLevel::L3),
    ]
}

#[test]
fn figures_are_byte_identical_with_obs_on() {
    let kernels = mini_suite();
    let pool = JobPool::new(2);
    let off = Runner::local(SimConfig::table_i());
    // A small trace capacity keeps the retained per-run buffers tiny;
    // dropped events don't perturb timing either.
    let on = Runner::local(SimConfig::table_i().with_obs(ObsConfig::full(4096)));
    let r_off = run_suite_on(&off, &kernels, &pool).expect("suite completes");
    let r_on = run_suite_on(&on, &kernels, &pool).expect("suite completes");

    assert_eq!(fig6_report(&r_off), fig6_report(&r_on), "fig6 perturbed by obs");
    assert_eq!(fig7_report(&r_off), fig7_report(&r_on), "fig7 perturbed by obs");
    assert_eq!(fig8_report(&r_off), fig8_report(&r_on), "fig8 perturbed by obs");
    assert_eq!(table3_report(&r_off), table3_report(&r_on), "table3 perturbed by obs");
    assert_eq!(runs_csv(&r_off), runs_csv(&r_on), "runs CSV perturbed by obs");
    assert_eq!(fig6_csv(&r_off), fig6_csv(&r_on), "fig6 CSV perturbed by obs");

    // The probe actually rode along (and only when configured).
    assert!(r_on.runs[0].1[0][0].obs.is_some(), "obs missing from enabled run");
    assert!(r_off.runs[0].1[0][0].obs.is_none(), "obs attached to disabled run");
}

#[test]
fn metrics_are_deterministic_across_worker_counts() {
    let kernels = mini_suite();
    let runner = Runner::local(SimConfig::table_i().with_obs(ObsConfig::occupancy()));
    let m1 = run_suite_on(&runner, &kernels, &JobPool::new(1)).expect("suite completes").metrics();
    for jobs in [2, 4] {
        let mj = run_suite_on(&runner, &kernels, &JobPool::new(jobs))
            .expect("suite completes")
            .metrics();
        assert_eq!(m1.to_json(), mj.to_json(), "metric snapshot diverged at {jobs} jobs");
    }
    // Sanity: the snapshot carries suite counters, per-domain counters
    // and merged occupancy histograms.
    let sims = (kernels.len() * Variant::ALL.len() * AttackModel::ALL.len()) as u64;
    assert_eq!(m1.counter("run.sims"), Some(sims));
    assert!(m1.counter("core.committed").unwrap_or(0) > 0);
    assert!(m1.counter("mem.l1.hits").unwrap_or(0) > 0);
    let rob = m1.histogram("pipeline.occupancy.rob").expect("occupancy recorded");
    assert_eq!(rob.count(), m1.counter("run.cycles").expect("cycles counted"));
}

#[test]
fn event_trace_round_trips_through_a_real_run() {
    let sim = Simulator::new(SimConfig::table_i().with_obs(ObsConfig::full(1 << 16)));
    let w = Workload::new("hash_lookup", hash_lookup(1 << 10, 120, 5))
        .warmed(0x80_0000, (1 << 10) * 8, CacheLevel::L3);
    let r = sim
        .run(&RunRequest::workload(&w).variant(Variant::Hybrid).attack(AttackModel::Spectre))
        .expect("run completes")
        .into_result();
    let obs = r.obs.expect("obs attached");
    let trace = obs.trace().expect("tracing enabled");
    assert!(!trace.events().is_empty(), "no events recorded");

    let jsonl = trace.to_jsonl();
    let parsed = EventTrace::parse_jsonl(&jsonl).expect("trace parses back");
    assert_eq!(parsed.events(), trace.events(), "events changed across the round trip");
    assert_eq!(parsed.to_jsonl(), jsonl, "re-serialization not byte-identical");
}

#[test]
fn csv_exports_are_rectangular() {
    let kernels = mini_suite();
    let runner = Runner::local(SimConfig::table_i());
    let results = run_suite_on(&runner, &kernels, &JobPool::new(4)).expect("suite completes");
    for (name, csv) in [("runs", runs_csv(&results)), ("fig6", fig6_csv(&results))] {
        let mut lines = csv.lines();
        let header = lines.next().expect("header line");
        let cols = header.split(',').count();
        let mut rows = 0;
        for row in lines {
            assert_eq!(row.split(',').count(), cols, "{name}: ragged row {row}");
            rows += 1;
        }
        assert!(rows > 0, "{name}: no data rows");
    }
    assert_eq!(runs_csv_header().split(',').count(), RUN_COLUMNS.len());
}
