//! In-tree repo lint: mechanical source checks the compiler does not
//! enforce, run as a tier-1 test (and in CI next to clippy).
//!
//! Four rules, all budgeted by `lint_allowlist.txt`:
//!
//! * **no-unwrap** — `.unwrap()` / `.expect(` outside `#[cfg(test)]`
//!   in the hot-path modules (`uarch::core`, `mem::cache`,
//!   `mem::mshr`). A panic in the cycle loop takes down a whole
//!   campaign; recoverable paths must return errors.
//! * **exhaustive-match** — no `_ =>` arm in a `match` over
//!   [`sdo_isa`]'s `OpClass` / `Instruction` in security-relevant
//!   files: a new instruction class silently falling into a wildcard
//!   arm is exactly how a transmitter escapes taint tracking.
//! * **no-percycle-alloc** — no heap-allocating constructs
//!   (`Vec::new` / `vec![` / `.clone()` / `.collect()` / `Box::new` /
//!   `to_vec()`) in the per-cycle engine files outside the named
//!   cold-path functions ([`COLD_FNS`]): the data-oriented engine's
//!   stages run allocation-free once warm, and a stray `collect()` in
//!   a stage sweep is exactly the regression this guards against.
//! * **decoder-wildcard** — no `_ =>` arm at all in the RV32 decoder:
//!   every encoding must either decode or map to a typed
//!   `Unsupported` error naming the pc and word. A wildcard arm is how
//!   an unimplemented encoding silently decodes as something else —
//!   the budget is 0 and stays 0.
//! * **no-trunc-cast** — no truncating `as` casts (`as u8`/`u16`/
//!   `u32`/`i8`/`i16`/`i32`) in the RV32 lowering pass or the
//!   analyzer's abstract-memory module: width discipline (the sext32
//!   invariant, `i64` effective addresses) is exactly where a silent
//!   truncation breaks soundness. Use the from_le_bytes helpers or
//!   `i64::from` widenings instead — the budget is 0 and stays 0.
//!
//! The allowlist pins the *current* count per (file, rule). The check
//! is a ratchet in both directions: exceeding the budget fails (fix
//! the code or consciously raise the budget in review), and beating
//! it fails too (lower the budget so the improvement sticks).

use std::path::{Path, PathBuf};

/// Hot-path files where panicking helpers are forbidden outside tests.
const NO_UNWRAP: &[&str] =
    &["crates/uarch/src/core.rs", "crates/mem/src/cache.rs", "crates/mem/src/mshr.rs"];

/// Security-relevant files where `OpClass`/`Instruction` matches must
/// be exhaustive (no `_ =>`).
const EXHAUSTIVE_MATCH: &[&str] = &[
    "crates/uarch/src/core.rs",
    "crates/analyze/src/taint.rs",
    "crates/analyze/src/cfg.rs",
    "crates/verify/src/oracle.rs",
    "crates/obs/src/trace.rs",
];

/// Decoder files where every `_ =>` arm is forbidden (budget 0): an
/// encoding either decodes or becomes a typed `Unsupported` error.
const DECODER_WILDCARD: &[&str] = &["crates/rv32/src/decode.rs"];

/// Width-discipline files where truncating `as` casts are forbidden
/// (budget 0): the lowering pass keeps every RV32 register
/// sign-extended to 64 bits and the abstract memory keys regions off
/// exact `i64` offsets — one silent `as u32` breaks either invariant.
const NO_TRUNC_CAST: &[&str] =
    &["crates/rv32/src/lower.rs", "crates/analyze/src/memory.rs"];

/// Truncating cast patterns (64-bit and pointer-width targets are
/// fine; narrowing ones are not).
const TRUNC_CAST_PATTERNS: &[&str] =
    &["as u8", "as u16", "as u32", "as i8", "as i16", "as i32"];

/// Per-cycle engine files where heap allocation is forbidden outside
/// the cold-path functions below.
const NO_PERCYCLE_ALLOC: &[&str] = &[
    "crates/uarch/src/core.rs",
    "crates/uarch/src/rob.rs",
    "crates/uarch/src/sched.rs",
];

/// Functions exempt from `no-percycle-alloc`: construction/configuration
/// (run once per core) and diagnostics (never on the cycle loop).
const COLD_FNS: &[&str] = &[
    "new",
    "empty",
    "identity",
    "build_predictor",
    "record_commits",
    "enable_trace",
    "enable_obs",
    "debug_head",
];

/// Allocation patterns the per-cycle rule looks for.
const ALLOC_PATTERNS: &[&str] =
    &["Vec::new", "vec![", ".clone()", ".collect()", "Box::new", "to_vec()"];

const ALLOWLIST: &str = include_str!("lint_allowlist.txt");

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("workspace root").into()
}

/// Budget for (file, rule) from the allowlist; 0 when absent.
fn budget(path: &str, rule: &str) -> usize {
    for line in ALLOWLIST.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (p, r, n) = (parts.next(), parts.next(), parts.next());
        assert!(
            n.is_some() && parts.next().is_none(),
            "malformed allowlist line: '{line}' (want '<path> <rule> <count>')"
        );
        if p == Some(path) && r == Some(rule) {
            return n.and_then(|v| v.parse().ok()).expect("numeric budget");
        }
    }
    0
}

/// The portion of a source file before its `#[cfg(test)]` module, with
/// comment-only lines dropped.
fn non_test_lines(text: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let t = line.trim_start();
        if t.starts_with("//") {
            continue;
        }
        out.push((i + 1, line));
    }
    out
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start().len()
}

/// Line numbers of `_ =>` arms whose enclosing `match` has an
/// `OpClass::` or `Instruction::` arm — i.e. wildcard arms that would
/// swallow a newly added instruction kind. Relies on rustfmt layout:
/// arms sit exactly one level deeper than their `match` header.
fn wildcard_arm_lines(text: &str) -> Vec<usize> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if !line.trim_start().starts_with("_ =>") {
            continue;
        }
        let ind = indent_of(line);
        // Nearest enclosing construct: first line above with smaller
        // indentation. For a match arm that is the match header.
        let Some(header) = (0..i).rev().find(|&j| {
            !lines[j].trim().is_empty() && indent_of(lines[j]) < ind
        }) else {
            continue;
        };
        if !lines[header].contains("match ") {
            continue;
        }
        let sibling_arms = (header + 1..i).filter(|&j| indent_of(lines[j]) == ind);
        let mut arms = sibling_arms.map(|j| lines[j]);
        if arms.any(|a| a.contains("OpClass::") || a.contains("Instruction::")) {
            out.push(i + 1);
        }
    }
    out
}

/// Allocation-pattern hits outside [`COLD_FNS`], as `(line, detail)`.
/// Lines are attributed to the most recent `fn` item header; rustfmt
/// layout keeps this exact for the engine files.
fn percycle_alloc_hits(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut current_fn: Option<String> = None;
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let t = line.trim_start();
        if t.starts_with("//") {
            continue;
        }
        if let Some(pos) = t.find("fn ") {
            // Function item headers only: `fn` first on the line or
            // preceded by visibility — not `-> fn(...)` pointer types.
            let head = t[..pos].trim_end();
            if head.is_empty() || head == "pub" || head.starts_with("pub(") {
                let name: String = t[pos + 3..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    current_fn = Some(name);
                }
            }
        }
        if current_fn.as_deref().is_some_and(|f| COLD_FNS.contains(&f)) {
            continue;
        }
        for p in ALLOC_PATTERNS {
            if line.contains(p) {
                let f = current_fn.as_deref().unwrap_or("<module scope>");
                out.push((i + 1, format!("`{p}` in {f} (line {})", i + 1)));
            }
        }
    }
    out
}

/// Truncating-cast hits in non-test, non-comment lines, word-bounded
/// on both sides (so `bias u8` or `as usize` never match).
fn trunc_cast_hits(text: &str) -> Vec<usize> {
    let boundary = |c: Option<char>| !c.is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut out = Vec::new();
    for (n, line) in non_test_lines(text) {
        for p in TRUNC_CAST_PATTERNS {
            for (idx, _) in line.match_indices(p) {
                let before = line[..idx].chars().next_back();
                let after = line[idx + p.len()..].chars().next();
                if boundary(before) && boundary(after) {
                    out.push(n);
                }
            }
        }
    }
    out
}

#[test]
fn width_discipline_files_have_no_truncating_casts_beyond_budget() {
    let root = workspace_root();
    let mut failures = Vec::new();
    for path in NO_TRUNC_CAST {
        let text = std::fs::read_to_string(root.join(path)).expect(path);
        let hits = trunc_cast_hits(&text);
        let allowed = budget(path, "no-trunc-cast");
        if hits.len() > allowed {
            failures.push(format!(
                "{path}: truncating casts at lines {hits:?} ({} > budget {allowed}) — \
                 use the as_signed/as_unsigned/sext32 from_le_bytes helpers or an \
                 infallible From widening; a silent truncation here breaks the \
                 sext32 / region-offset invariant",
                hits.len()
            ));
        } else if hits.len() < allowed {
            failures.push(format!(
                "{path}: {} truncating casts but budget is {allowed} — lower the budget \
                 in lint_allowlist.txt so the improvement sticks",
                hits.len()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn percycle_engine_files_do_not_allocate_beyond_budget() {
    let root = workspace_root();
    let mut failures = Vec::new();
    for path in NO_PERCYCLE_ALLOC {
        let text = std::fs::read_to_string(root.join(path)).expect(path);
        let hits = percycle_alloc_hits(&text);
        let allowed = budget(path, "no-percycle-alloc");
        if hits.len() > allowed {
            let details: Vec<&str> = hits.iter().map(|(_, d)| d.as_str()).collect();
            failures.push(format!(
                "{path}: heap allocation on the cycle path ({} > budget {allowed}): {} — \
                 reuse a scratch buffer (see Core::scratch_slots / event_buf), or move \
                 the work into a cold-path fn listed in COLD_FNS",
                hits.len(),
                details.join(", ")
            ));
        } else if hits.len() < allowed {
            failures.push(format!(
                "{path}: only {} allocation sites but budget is {allowed} — lower the \
                 budget in lint_allowlist.txt so the improvement sticks",
                hits.len()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn hot_path_modules_do_not_unwrap_beyond_budget() {
    let root = workspace_root();
    let mut failures = Vec::new();
    for path in NO_UNWRAP {
        let text = std::fs::read_to_string(root.join(path)).expect(path);
        let count: usize = non_test_lines(&text)
            .iter()
            .map(|(_, l)| l.matches(".unwrap()").count() + l.matches(".expect(").count())
            .sum();
        let allowed = budget(path, "no-unwrap");
        if count > allowed {
            failures.push(format!(
                "{path}: {count} unwrap()/expect() outside tests exceeds budget {allowed} — \
                 return an error instead, or raise the budget in lint_allowlist.txt"
            ));
        } else if count < allowed {
            failures.push(format!(
                "{path}: only {count} unwrap()/expect() but budget is {allowed} — \
                 lower the budget in lint_allowlist.txt so the improvement sticks"
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn security_relevant_matches_are_exhaustive_within_budget() {
    let root = workspace_root();
    let mut failures = Vec::new();
    for path in EXHAUSTIVE_MATCH {
        let text = std::fs::read_to_string(root.join(path)).expect(path);
        let hits = wildcard_arm_lines(&text);
        let allowed = budget(path, "exhaustive-match");
        if hits.len() > allowed {
            failures.push(format!(
                "{path}: `_ =>` arms on OpClass/Instruction matches at lines {hits:?} \
                 ({} > budget {allowed}) — enumerate the variants so new instruction \
                 kinds are a compile error, or raise the budget in lint_allowlist.txt",
                hits.len()
            ));
        } else if hits.len() < allowed {
            failures.push(format!(
                "{path}: {} wildcard arms but budget is {allowed} — lower the budget \
                 in lint_allowlist.txt so the improvement sticks",
                hits.len()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn decoder_files_have_no_wildcard_arms_beyond_budget() {
    // Stricter than `exhaustive-match`: in a decoder, ANY `_ =>` arm
    // (not just over OpClass/Instruction) can swallow an encoding, so
    // all of them count.
    let root = workspace_root();
    let mut failures = Vec::new();
    for path in DECODER_WILDCARD {
        let text = std::fs::read_to_string(root.join(path)).expect(path);
        let hits: Vec<usize> = non_test_lines(&text)
            .iter()
            .filter(|(_, l)| l.trim_start().starts_with("_ =>"))
            .map(|&(n, _)| n)
            .collect();
        let allowed = budget(path, "decoder-wildcard");
        if hits.len() > allowed {
            failures.push(format!(
                "{path}: wildcard arms at lines {hits:?} ({} > budget {allowed}) — decode \
                 the encoding or return a typed Unsupported error carrying pc and word; \
                 a decoder wildcard silently mis-decodes future encodings",
                hits.len()
            ));
        } else if hits.len() < allowed {
            failures.push(format!(
                "{path}: {} wildcard arms but budget is {allowed} — lower the budget \
                 in lint_allowlist.txt so the improvement sticks",
                hits.len()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn allowlist_entries_reference_linted_files() {
    // Stale allowlist entries (renamed files, rules that no longer
    // apply) silently re-open the hole they once budgeted.
    for line in ALLOWLIST.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let path = parts.next().expect("path");
        let rule = parts.next().expect("rule");
        match rule {
            "no-unwrap" => assert!(NO_UNWRAP.contains(&path), "stale entry: {line}"),
            "exhaustive-match" => {
                assert!(EXHAUSTIVE_MATCH.contains(&path), "stale entry: {line}");
            }
            "no-percycle-alloc" => {
                assert!(NO_PERCYCLE_ALLOC.contains(&path), "stale entry: {line}");
            }
            "decoder-wildcard" => {
                assert!(DECODER_WILDCARD.contains(&path), "stale entry: {line}");
            }
            "no-trunc-cast" => {
                assert!(NO_TRUNC_CAST.contains(&path), "stale entry: {line}");
            }
            other => panic!("unknown rule '{other}' in allowlist line: {line}"),
        }
        assert!(workspace_root().join(path).exists(), "allowlisted file missing: {path}");
    }
}

#[cfg(test)]
mod detector_tests {
    use super::*;

    #[test]
    fn wildcard_detector_flags_opclass_matches_only() {
        let flagged = "\
fn f(c: OpClass) {
    match c {
        OpClass::Load => a(),
        _ => b(),
    }
}
";
        assert_eq!(wildcard_arm_lines(flagged), vec![4]);
        let benign = "\
fn f(w: MemWidth) {
    match w {
        MemWidth::Byte => a(),
        _ => b(),
    }
}
";
        assert!(wildcard_arm_lines(benign).is_empty());
        let nested = "\
fn f(i: &Instruction) {
    match i {
        Instruction::Load { .. } => match width {
            MemWidth::Byte => a(),
            _ => b(),
        },
        _ => c(),
    }
}
";
        // The inner MemWidth wildcard is fine; the outer Instruction
        // wildcard is flagged.
        assert_eq!(wildcard_arm_lines(nested), vec![7]);
    }

    #[test]
    fn alloc_detector_exempts_cold_fns_and_flags_stages() {
        let text = "\
impl Core {
    pub fn new() -> Self {
        let v = Vec::new(); // cold: allowed
        Self { v }
    }

    fn issue_stage(&mut self) {
        let snapshot = self.iq.clone();
        let seqs: Vec<u64> = snapshot.iter().collect();
    }
}
";
        let hits = percycle_alloc_hits(text);
        let lines: Vec<usize> = hits.iter().map(|&(l, _)| l).collect();
        assert_eq!(lines, vec![8, 9]);
        // `fn` pointer types must not reset the current function.
        let ptr = "\
fn hot(&self) -> fn(&mut B) -> &mut u32 {
    let x = y.clone();
}
";
        assert_eq!(percycle_alloc_hits(ptr).len(), 1);
    }

    #[test]
    fn trunc_cast_detector_is_word_bounded() {
        let text = "\
fn f(x: u64) -> u32 {
    let a = x as u32; // flagged
    let b = x as u64; // widening target: fine
    let c = x as usize; // pointer width: fine
    let d = alias_u8(x); // identifier containing the letters: fine
}
";
        assert_eq!(trunc_cast_hits(text), vec![2]);
        // Comment-only lines are dropped before matching.
        let commented = "// let a = x as u32;\nlet b = y as i16;\n";
        assert_eq!(trunc_cast_hits(commented), vec![2]);
    }

    #[test]
    fn non_test_scan_stops_at_test_module_and_skips_comments() {
        let text = "\
fn a() { x.unwrap(); } // real
// x.unwrap() in a comment
#[cfg(test)]
mod tests { fn b() { y.unwrap(); } }
";
        let lines = non_test_lines(text);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].0, 1);
    }
}
