//! Golden tests for the content-addressed store key.
//!
//! [`RunKey`] identity is what makes memoization sound: two requests map
//! to the same key exactly when the simulator is guaranteed (by
//! determinism) to produce byte-identical results for them. These tests
//! pin the key of one fixed request to a literal digest — so any change
//! to the canonical encoding is a *visible* decision that invalidates
//! stores, not a silent one — and walk representative knobs at every
//! config layer proving each one lands in the key.

use sdo_harness::store::RunKey;
use sdo_harness::{JobPool, Runner, RunRequest, SimConfig, Variant};
use sdo_uarch::AttackModel;
use sdo_workloads::kernels::{self, l1_resident};

fn fixed_request() -> (sdo_isa::Program, SimConfig) {
    (l1_resident(120, 1), SimConfig::table_i())
}

/// The pinned digest of `fixed_request()` under `sdo-runkey-v1`. If this
/// test fails, the canonical request encoding changed: bump the domain
/// tag in `store.rs`, re-pin this literal, and note in DESIGN.md §13
/// that existing stores are invalidated.
#[test]
fn runkey_digest_is_pinned() {
    let (prog, base) = fixed_request();
    let req = RunRequest::program(&prog).variant(Variant::Hybrid).seed(7);
    assert_eq!(
        RunKey::of(&req, base).hex(),
        "a6da69c55830cf6ba25b5bfc842f136fdc7e5238c57caf22a61acdd9bd6cd635",
    );
}

#[test]
fn runkey_is_a_pure_function_of_the_request() {
    let (prog, base) = fixed_request();
    let req = RunRequest::program(&prog).variant(Variant::Hybrid).seed(7);
    let again = RunRequest::program(&prog).variant(Variant::Hybrid).seed(7);
    assert_eq!(RunKey::of(&req, base), RunKey::of(&again, base));
    assert_eq!(RunKey::of(&req, base).hex(), RunKey::of(&req, base).hex());
}

/// A request-level config override that equals the base resolves to the
/// same key as no override at all: the key hashes the *effective*
/// config, so clients can't fragment the store by spelling defaults out.
#[test]
fn runkey_hashes_the_effective_config() {
    let (prog, base) = fixed_request();
    let implicit = RunRequest::program(&prog).variant(Variant::Hybrid);
    let explicit = RunRequest::program(&prog).variant(Variant::Hybrid).config(base);
    assert_eq!(RunKey::of(&implicit, base), RunKey::of(&explicit, base));
    // ...and an override that *differs* from the base diverges.
    assert_ne!(RunKey::of(&implicit, base), RunKey::of(&implicit, SimConfig::tiny()));
}

/// Every layer of the machine description reaches the key. One
/// representative knob per subsystem: pipeline, latencies, L1 geometry,
/// DRAM, TLB, cycle budget, observability, fast-forward, mesh shape.
#[test]
fn runkey_diverges_on_every_config_layer() {
    let (prog, base) = fixed_request();
    let req = RunRequest::program(&prog).variant(Variant::Hybrid).seed(7);
    let key = RunKey::of(&req, base);

    let knobs: Vec<(&str, SimConfig)> = vec![
        ("core.width", {
            let mut c = base;
            c.core.width += 1;
            c
        }),
        ("core.rob_entries", {
            let mut c = base;
            c.core.rob_entries += 16;
            c
        }),
        ("core.lat.fp_mul", {
            let mut c = base;
            c.core.lat.fp_mul += 1;
            c
        }),
        ("mem.l1.size_bytes", {
            let mut c = base;
            c.mem.l1.size_bytes *= 2;
            c
        }),
        ("mem.l1.latency", {
            let mut c = base;
            c.mem.l1.latency += 1;
            c
        }),
        ("mem.mesh_cols", {
            let mut c = base;
            c.mem.mesh_cols += 1;
            c
        }),
        ("mem.dram.banks", {
            let mut c = base;
            c.mem.dram.banks += 1;
            c
        }),
        ("mem.tlb.entries", {
            let mut c = base;
            c.mem.tlb.entries *= 2;
            c
        }),
        ("max_cycles", {
            let mut c = base;
            c.max_cycles += 1;
            c
        }),
        ("obs.occupancy", {
            let mut c = base;
            c.obs.occupancy = true;
            c
        }),
        ("fast_forward", {
            let mut c = base;
            c.fast_forward = false;
            c
        }),
    ];
    for (name, cfg) in knobs {
        assert_ne!(
            RunKey::of(&req.clone().config(cfg), base),
            key,
            "changing {name} must change the key"
        );
    }
}

/// Request-level knobs (everything outside the machine config) also
/// reach the key.
#[test]
fn runkey_diverges_on_every_request_knob() {
    let (prog, base) = fixed_request();
    let req = RunRequest::program(&prog).variant(Variant::Hybrid).seed(7);
    let key = RunKey::of(&req, base);

    let other_prog = l1_resident(121, 1);
    let variants = [
        ("variant", RunRequest::program(&prog).variant(Variant::Unsafe).seed(7)),
        (
            "attack",
            RunRequest::program(&prog)
                .variant(Variant::Hybrid)
                .attack(AttackModel::Futuristic)
                .seed(7),
        ),
        ("seed", RunRequest::program(&prog).variant(Variant::Hybrid).seed(8)),
        ("program", RunRequest::program(&other_prog).variant(Variant::Hybrid).seed(7)),
    ];
    for (name, other) in variants {
        assert_ne!(RunKey::of(&other, base), key, "changing {name} must change the key");
    }
}

/// The cache-semantics contract end to end, at suite granularity: a
/// warm-store rerun of a fig6-shaped suite is served entirely from the
/// store (zero simulations) and the exported CSV is byte-identical.
#[test]
fn warm_store_rerun_is_all_hits_and_byte_identical() {
    let dir = std::env::temp_dir()
        .join(format!("sdo-runkey-warm-{}", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let _ = std::fs::remove_dir_all(&dir);
    let suite = &kernels::suite()[..2];
    let pool = JobPool::new(2);

    let cold = Runner::with_store(SimConfig::tiny(), &dir).unwrap();
    let cold_results = sdo_harness::experiments::run_suite_on(&cold, suite, &pool).unwrap();
    let cold_csv = sdo_harness::export::fig6_csv(&cold_results);
    assert_eq!(cold.hits(), 0);
    assert_eq!(cold.misses(), cold_results.sims());

    let warm = Runner::with_store(SimConfig::tiny(), &dir).unwrap();
    let warm_results = sdo_harness::experiments::run_suite_on(&warm, suite, &pool).unwrap();
    let warm_csv = sdo_harness::export::fig6_csv(&warm_results);
    assert_eq!(warm.misses(), 0, "warm rerun must execute zero simulations");
    assert_eq!(warm.hits(), cold_results.sims());
    assert_eq!(warm_csv, cold_csv, "warm-store CSV is byte-identical");
    assert_eq!(
        warm.cache_report().unwrap(),
        format!("cache: {} hits, 0 misses (100.0% cached)", warm.hits())
    );

    // --no-cache re-simulates everything (counted as misses, refreshing
    // the store) but still matches, because the simulator is
    // deterministic.
    let bypass = Runner::with_store(SimConfig::tiny(), &dir).unwrap().no_cache(true);
    let bypass_results = sdo_harness::experiments::run_suite_on(&bypass, suite, &pool).unwrap();
    assert_eq!((bypass.hits(), bypass.misses()), (0, cold_results.sims()));
    assert_eq!(sdo_harness::export::fig6_csv(&bypass_results), cold_csv);
    std::fs::remove_dir_all(&dir).unwrap();
}
