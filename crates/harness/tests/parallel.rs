//! Regression tests for the parallel experiment engine: the pool must be
//! a pure throughput device — byte-identical results at any worker count,
//! canonical first-error-wins semantics, clean shutdown on failure.

use sdo_harness::experiments::{fig6_report, run_suite_on};
use sdo_harness::{JobPool, Runner, SimConfig, SimError, Variant};
use sdo_mem::CacheLevel;
use sdo_uarch::AttackModel;
use sdo_workloads::kernels::{hash_lookup, l1_resident, stream};
use sdo_workloads::Workload;

/// A small suite that exercises loads, branches and Obl-Lds but finishes
/// in well under a second across the full variant × attack cross product.
fn mini_suite() -> Vec<Workload> {
    vec![
        Workload::new("l1_resident", l1_resident(200, 10)),
        Workload::new("stream", stream(512, 1, 2)).warmed(0x20_0000, 512 * 8, CacheLevel::L3),
        Workload::new("hash_lookup", hash_lookup(1 << 10, 120, 5))
            .warmed(0x80_0000, (1 << 10) * 8, CacheLevel::L3),
    ]
}

#[test]
fn parallel_suite_is_byte_identical_to_serial() {
    let runner = Runner::local(SimConfig::table_i());
    let kernels = mini_suite();
    let serial = run_suite_on(&runner, &kernels, &JobPool::new(1)).expect("serial suite completes");
    for jobs in [2, 3, 8] {
        let par =
            run_suite_on(&runner, &kernels, &JobPool::new(jobs)).expect("parallel suite completes");
        assert_eq!(serial.workloads, par.workloads, "workload order at {jobs} jobs");
        // The merged RunResult stream must match field-for-field, in
        // canonical (attack, workload, variant) order.
        for ((a_ser, pw_ser), (a_par, pw_par)) in serial.runs.iter().zip(&par.runs) {
            assert_eq!(a_ser, a_par);
            for (runs_ser, runs_par) in pw_ser.iter().zip(pw_par) {
                assert_eq!(runs_ser, runs_par, "RunResult stream diverged at {jobs} jobs");
            }
        }
        // And the rendered artifact must be byte-identical.
        assert_eq!(
            fig6_report(&serial),
            fig6_report(&par),
            "fig6 text diverged at {jobs} jobs"
        );
    }
}

#[test]
fn pool_reports_the_canonically_first_hang() {
    // A budget small enough that every run of the first workload hangs,
    // while later jobs may or may not complete — the returned error must
    // still be the canonically-first job's, independent of scheduling.
    let mut cfg = SimConfig::table_i();
    cfg.max_cycles = 500;
    let runner = Runner::local(cfg);
    let kernels = vec![
        Workload::new("hog", hash_lookup(1 << 12, 4000, 7)),
        Workload::new("small", l1_resident(50, 1)),
    ];
    let expected = SimError::Hang { max_cycles: 500, workload: "hash_lookup".to_string() };
    for jobs in [1, 4] {
        // Repeat to give nondeterministic scheduling a chance to slip up.
        for _ in 0..3 {
            let err = run_suite_on(&runner, &kernels, &JobPool::new(jobs))
                .expect_err("the hog workload must exceed the budget");
            assert_eq!(err, expected, "non-canonical error at {jobs} jobs");
        }
    }
}

#[test]
fn pool_survives_an_error_and_runs_again() {
    // After an Err the pool (a value type over std::thread::scope) must
    // be reusable: no poisoned state, no leaked workers.
    let pool = JobPool::new(4);
    let mut cfg = SimConfig::table_i();
    cfg.max_cycles = 500;
    let failing = Runner::local(cfg);
    let kernels = vec![Workload::new("hog", hash_lookup(1 << 12, 4000, 7))];
    assert!(run_suite_on(&failing, &kernels, &pool).is_err());

    let ok_runner = Runner::local(SimConfig::table_i());
    let ok_kernels = vec![Workload::new("small", l1_resident(50, 1))];
    let results = run_suite_on(&ok_runner, &ok_kernels, &pool).expect("pool reusable after error");
    assert_eq!(results.sims(), (Variant::ALL.len() * AttackModel::ALL.len()) as u64);
}
