//! Cross-layout differential test: pins the observable behaviour of the
//! core engine against goldens captured before the structure-of-arrays
//! refactor, so any layout change that perturbs simulated behaviour —
//! commit-PC streams, final [`sdo_uarch::CoreStats`], memory counters,
//! obs occupancy histograms — fails byte-for-byte.
//!
//! Coverage: all 10 suite kernels × {Unsafe, STT{ld}, SDO Hybrid,
//! SDO Perfect} × both attack models × fast-forward on/off. Each run is
//! summarized as one golden line holding the commit count, an FNV-1a
//! hash of the full committed-PC stream, the cycle count, and an FNV-1a
//! hash of the run's complete metric snapshot JSON (every `core.*`,
//! `mem.*` and `pipeline.*` counter/histogram).
//!
//! Regenerate with `SDO_BLESS=1 cargo test -p sdo-harness --test
//! layout_goldens` — but only ever from a commit whose engine behaviour
//! is already trusted; the file is the contract this refactor must keep.

use sdo_harness::{RunRequest, SimConfig, Simulator, Variant};
use sdo_mem::CacheLevel;
use sdo_uarch::{AttackModel, ObsConfig};
use sdo_workloads::kernels::{
    fp_subnormal, hash_lookup, l1_resident, matmul_blocked, mix_branchy, phase_shift, ptr_chase,
    stencil, stream, stride,
};
use sdo_workloads::Workload;
use std::path::{Path, PathBuf};

const GOLDEN: &str = include_str!("layout_goldens.txt");

/// The four Table II variants the issue pins (insecure baseline, STT,
/// realistic SDO, oracle SDO).
const VARIANTS: [Variant; 4] =
    [Variant::Unsafe, Variant::SttLd, Variant::Hybrid, Variant::Perfect];

/// All 10 evaluation kernels at reduced trip counts — same programs and
/// warm-start shapes as the full suite, sized so the cross product stays
/// debug-mode fast. Sizes must never change once goldens are blessed.
fn mini_suite() -> Vec<Workload> {
    vec![
        Workload::new("ptr_chase", ptr_chase(1 << 12, 150, 1))
            .warmed(0x10_0000, 1 << 12, CacheLevel::L3),
        Workload::new("stream", stream(512, 1, 2)).warmed(0x20_0000, 512 * 8, CacheLevel::L3),
        Workload::new("stride", stride(128, 3, 2, 3)).warmed(0x40_0000, 128 * 64, CacheLevel::L3),
        Workload::new("mix_branchy", mix_branchy(1 << 10, 200, 4))
            .warmed(0x30_0000, (1 << 10) * 8, CacheLevel::L2),
        Workload::new("hash_lookup", hash_lookup(1 << 10, 150, 5))
            .warmed(0x80_0000, (1 << 10) * 8, CacheLevel::L3),
        Workload::new("stencil", stencil(256, 2, 6)).warmed(0x50_0000, 256 * 8 + 16, CacheLevel::L2),
        Workload::new("matmul_blocked", matmul_blocked(6, 7)),
        Workload::new("fp_subnormal", fp_subnormal(200, 16, 8)),
        Workload::new("phase_shift", phase_shift(60, 3, 9))
            .warmed(0xB0_0000, (1 << 16) * 8, CacheLevel::L3),
        Workload::new("l1_resident", l1_resident(400, 10)),
    ]
}

/// FNV-1a, 64-bit: stable across platforms and std versions (unlike
/// `DefaultHasher`), so goldens never rot with a toolchain bump.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fnv1a_u64s(vals: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in vals {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/layout_goldens.txt")
}

/// Simulates the full cross product and renders one line per run.
fn capture() -> String {
    let mut out = String::from(
        "# Engine-layout goldens: one line per (kernel, variant, attack, skip) run.\n\
         # workload variant attack skip cycles commits pc_hash metrics_hash\n\
         # Regenerate (from a trusted engine only):\n\
         #   SDO_BLESS=1 cargo test -p sdo-harness --test layout_goldens\n",
    );
    for skip in [false, true] {
        let cfg = SimConfig::table_i().with_obs(ObsConfig::occupancy()).with_fast_forward(skip);
        let sim = Simulator::new(cfg);
        for attack in AttackModel::ALL {
            for w in &mini_suite() {
                for variant in VARIANTS {
                    let out_run = sim
                        .run(&RunRequest::workload(w).variant(variant).attack(attack).record())
                        .expect("mini kernel completes");
                    let pcs = out_run.commit_pcs().expect("recording requested").to_vec();
                    let r = out_run.into_result();
                    out.push_str(&format!(
                        "{} {} {} {} cycles={} commits={} pc_hash={:016x} metrics_hash={:016x}\n",
                        w.name(),
                        variant.slug(),
                        attack,
                        if skip { "skip" } else { "step" },
                        r.cycles,
                        pcs.len(),
                        fnv1a_u64s(&pcs),
                        fnv1a(r.metrics().to_json().as_bytes()),
                    ));
                }
            }
        }
    }
    out
}

#[test]
fn engine_layout_matches_blessed_goldens() {
    let got = capture();
    if std::env::var_os("SDO_BLESS").is_some() {
        std::fs::write(golden_path(), &got).expect("write goldens");
        return;
    }
    assert!(
        !GOLDEN.trim().is_empty(),
        "no goldens blessed yet — run with SDO_BLESS=1 from a trusted engine"
    );
    if got != GOLDEN {
        // Diff line-by-line so a failure names the exact divergent runs
        // instead of dumping 320 lines.
        let mut diffs = Vec::new();
        for (g, b) in got.lines().zip(GOLDEN.lines()) {
            if g != b {
                diffs.push(format!("  golden: {b}\n  got:    {g}"));
            }
        }
        if got.lines().count() != GOLDEN.lines().count() {
            diffs.push(format!(
                "  line counts differ: golden {} vs got {}",
                GOLDEN.lines().count(),
                got.lines().count()
            ));
        }
        panic!(
            "engine behaviour diverged from blessed layout goldens in {} run(s):\n{}",
            diffs.len(),
            diffs.join("\n")
        );
    }
}
