//! Randomized property tests for the SDO framework: the Obl-Ld state
//! machine must behave sanely under *every* legal event interleaving, and
//! the location predictors must uphold their structural invariants.
//!
//! Cases are driven by the deterministic [`SdoRng`] stream, so every run
//! explores the same interleavings and failures reproduce exactly.

use sdo_core::oblld::{OblAction, OblEvent, OblLdFsm};
use sdo_core::predictor::{
    GreedyPredictor, HybridPredictor, LocationPredictor, LoopPredictor, PerfectPredictor,
    StaticPredictor,
};
use sdo_mem::CacheLevel;
use sdo_rng::SdoRng;

fn level_of(depth: u8) -> CacheLevel {
    CacheLevel::from_depth_clamped(depth)
}

/// Drives an FSM through one complete life at a given interleaving and
/// returns every action it emitted.
///
/// `safe_after` selects when the Safe event fires relative to the
/// responses; the validation (if one was requested) completes after
/// `val_after` further responses (clamped).
fn drive_fsm(
    predicted_depth: u8,
    hit_at: Option<u8>,
    exposure_eligible: bool,
    early_forward: bool,
    safe_after: usize,
    val_delay: usize,
    val_value: u64,
) -> (OblLdFsm, Vec<OblAction>) {
    let predicted = level_of(predicted_depth);
    let mut fsm = OblLdFsm::new(0x10, predicted, exposure_eligible, early_forward);
    let mut actions = Vec::new();

    let responses: Vec<OblEvent> = (1..=predicted_depth)
        .map(|d| {
            let hit = hit_at == Some(d);
            OblEvent::Response {
                level: level_of(d),
                hit,
                value: hit.then_some(42),
            }
        })
        .collect();

    // A tiny event scheduler: responses arrive one per step, Safe fires
    // at `safe_after`, and any IssueValidation action (whichever event
    // produced it) schedules a ValidationDone `val_delay` steps later.
    let mut pending_validation: Option<usize> = None;
    let mut fired_safe = false;
    let mut resp_iter = responses.into_iter();

    for step in 0..32usize {
        if fsm.is_done() {
            break;
        }
        let mut batch: Vec<OblAction> = Vec::new();
        if pending_validation.is_some_and(|due| step >= due) {
            pending_validation = None;
            batch.extend(fsm.on_event(OblEvent::ValidationDone {
                value: val_value,
                matches: Some(val_value) == fsm.forwarded_value(),
                level: CacheLevel::L2,
            }));
        } else if !fired_safe && step >= safe_after {
            fired_safe = true;
            batch.extend(fsm.on_event(OblEvent::Safe));
        } else if let Some(r) = resp_iter.next() {
            batch.extend(fsm.on_event(r));
        } else if !fired_safe {
            fired_safe = true;
            batch.extend(fsm.on_event(OblEvent::Safe));
        }
        if batch.iter().any(|a| matches!(a, OblAction::IssueValidation)) {
            pending_validation = Some(step + 1 + val_delay);
        }
        actions.extend(batch);
    }
    // Post-completion responses must be ignored, not crash.
    for r in resp_iter {
        if fsm.is_done() {
            actions.extend(fsm.on_event(r));
        }
    }
    (fsm, actions)
}

/// Under every interleaving the load eventually completes exactly once,
/// and a value is forwarded before (or with) completion.
#[test]
fn fsm_always_completes_exactly_once() {
    let mut rng = SdoRng::seed_from_u64(0x5d0_c0de);
    for case in 0..512 {
        let predicted = rng.gen_range(1u8..=3);
        let hit = if rng.gen_bool(0.5) { Some(rng.gen_range(1u8..=3)) } else { None };
        let exposure = rng.gen::<bool>();
        let early = rng.gen::<bool>();
        let safe_after = rng.gen_range(0usize..6);
        let val_delay = rng.gen_range(0usize..5);
        let val_value = rng.gen::<u64>();
        let hit_at = hit.filter(|h| *h <= predicted);
        let (fsm, actions) =
            drive_fsm(predicted, hit_at, exposure, early, safe_after, val_delay, val_value);
        let completes = actions.iter().filter(|a| matches!(a, OblAction::Complete)).count();
        assert!(fsm.is_done(), "case {case}: FSM must reach Done; actions: {actions:?}");
        assert_eq!(completes, 1, "case {case}: exactly one Complete; actions: {actions:?}");
        assert!(fsm.forwarded_value().is_some(), "case {case}: a value must reach dependents");
    }
}

/// A squash can only happen when the lookup failed after forwarding
/// pre-safe (case 1) or when the validation value mismatched — never on a
/// clean success.
#[test]
fn fsm_squashes_only_when_paper_says_so() {
    let mut rng = SdoRng::seed_from_u64(0x5d0_0001);
    let mut checked = 0;
    while checked < 256 {
        let predicted = rng.gen_range(1u8..=3);
        let hit = rng.gen_range(1u8..=3);
        if hit > predicted {
            continue;
        }
        checked += 1;
        let exposure = rng.gen::<bool>();
        let early = rng.gen::<bool>();
        let safe_after = rng.gen_range(0usize..6);
        let val_delay = rng.gen_range(0usize..5);
        // Success with a matching validation value: no squash allowed.
        let (fsm, actions) =
            drive_fsm(predicted, Some(hit), exposure, early, safe_after, val_delay, 42);
        assert!(!fsm.squashed(), "clean success must not squash; actions: {actions:?}");
    }
}

/// All-miss lookups whose fail is revealed only pre-safe (case 1) must
/// squash; fails revealed post-safe (case 2/3) must not.
#[test]
fn fsm_fail_squash_matches_case() {
    let mut rng = SdoRng::seed_from_u64(0x5d0_0002);
    for _ in 0..256 {
        let predicted = rng.gen_range(1u8..=3);
        let exposure = rng.gen::<bool>();
        let early = rng.gen::<bool>();
        let val_delay = rng.gen_range(0usize..5);
        let val_value = rng.gen::<u64>();
        // safe_after beyond all responses => case 1 (B before C).
        let (fsm1, _) = drive_fsm(
            predicted, None, exposure, early, predicted as usize + 1, val_delay, val_value,
        );
        assert!(fsm1.squashed(), "case-1 fail must squash");
        // safe first => case 2/3, no squash.
        let (fsm2, _) = drive_fsm(predicted, None, exposure, early, 0, val_delay, val_value);
        assert!(!fsm2.squashed(), "case-2/3 fail must not squash");
    }
}

/// Predictors always answer with a legal level, never panic, for any
/// update stream.
#[test]
fn predictors_total_over_random_histories() {
    let mut rng = SdoRng::seed_from_u64(0x5d0_0003);
    for _ in 0..64 {
        let len = rng.gen_range(0usize..300);
        let history: Vec<(u64, u8)> =
            (0..len).map(|_| (rng.gen_range(0u64..64), rng.gen_range(1u8..=4))).collect();
        let pc = rng.gen_range(0u64..1_000);
        let mut predictors: Vec<Box<dyn LocationPredictor>> = vec![
            Box::new(StaticPredictor::new(CacheLevel::L1)),
            Box::new(StaticPredictor::new(CacheLevel::L2)),
            Box::new(StaticPredictor::new(CacheLevel::L3)),
            Box::new(GreedyPredictor::default()),
            Box::new(LoopPredictor::default()),
            Box::new(HybridPredictor::default()),
            Box::new(PerfectPredictor),
        ];
        for p in &mut predictors {
            for &(hpc, depth) in &history {
                p.update(hpc, level_of(depth));
            }
            let pred = p.predict(pc, CacheLevel::L2);
            assert!(pred.depth() >= 1 && pred.depth() <= 4);
        }
    }
}

/// Greedy invariant: its prediction covers (is at least as deep as) every
/// level seen in the last `m` updates for that pc.
#[test]
fn greedy_covers_its_window() {
    let mut rng = SdoRng::seed_from_u64(0x5d0_0004);
    for _ in 0..128 {
        let len = rng.gen_range(1usize..40);
        let depths: Vec<u8> = (0..len).map(|_| rng.gen_range(1u8..=4)).collect();
        let window = rng.gen_range(1usize..12);
        let mut p = GreedyPredictor::new(64, window);
        let pc = 7;
        for &d in &depths {
            p.update(pc, level_of(d));
        }
        let pred = p.predict(pc, CacheLevel::L1);
        let recent_max = depths.iter().rev().take(window).copied().max().unwrap();
        assert_eq!(pred.depth(), recent_max, "greedy = max of window");
    }
}

/// The perfect predictor echoes the oracle for every residency.
#[test]
fn perfect_echoes_oracle() {
    let mut rng = SdoRng::seed_from_u64(0x5d0_0005);
    for _ in 0..256 {
        let depth = rng.gen_range(1u8..=4);
        let pc = rng.gen::<u64>();
        let mut p = PerfectPredictor;
        assert_eq!(p.predict(pc, level_of(depth)), level_of(depth));
    }
}
