//! Property-based tests for the SDO framework: the Obl-Ld state machine
//! must behave sanely under *every* legal event interleaving, and the
//! location predictors must uphold their structural invariants.

use proptest::prelude::*;
use sdo_core::oblld::{OblAction, OblEvent, OblLdFsm};
use sdo_core::predictor::{
    GreedyPredictor, HybridPredictor, LocationPredictor, LoopPredictor, PerfectPredictor,
    StaticPredictor,
};
use sdo_mem::CacheLevel;

fn level_of(depth: u8) -> CacheLevel {
    CacheLevel::from_depth_clamped(depth)
}

/// Drives an FSM through one complete life at a given interleaving and
/// returns every action it emitted.
///
/// `safe_after` selects when the Safe event fires relative to the
/// responses; the validation (if one was requested) completes after
/// `val_after` further responses (clamped).
fn drive_fsm(
    predicted_depth: u8,
    hit_at: Option<u8>,
    exposure_eligible: bool,
    early_forward: bool,
    safe_after: usize,
    val_delay: usize,
    val_value: u64,
) -> (OblLdFsm, Vec<OblAction>) {
    let predicted = level_of(predicted_depth);
    let mut fsm = OblLdFsm::new(0x10, predicted, exposure_eligible, early_forward);
    let mut actions = Vec::new();

    let responses: Vec<OblEvent> = (1..=predicted_depth)
        .map(|d| {
            let hit = hit_at == Some(d);
            OblEvent::Response {
                level: level_of(d),
                hit,
                value: hit.then_some(42),
            }
        })
        .collect();

    // A tiny event scheduler: responses arrive one per step, Safe fires
    // at `safe_after`, and any IssueValidation action (whichever event
    // produced it) schedules a ValidationDone `val_delay` steps later.
    let mut pending_validation: Option<usize> = None;
    let mut fired_safe = false;
    let mut resp_iter = responses.into_iter();

    for step in 0..32usize {
        if fsm.is_done() {
            break;
        }
        let mut batch: Vec<OblAction> = Vec::new();
        if pending_validation.is_some_and(|due| step >= due) {
            pending_validation = None;
            batch.extend(fsm.on_event(OblEvent::ValidationDone {
                value: val_value,
                matches: Some(val_value) == fsm.forwarded_value(),
                level: CacheLevel::L2,
            }));
        } else if !fired_safe && step >= safe_after {
            fired_safe = true;
            batch.extend(fsm.on_event(OblEvent::Safe));
        } else if let Some(r) = resp_iter.next() {
            batch.extend(fsm.on_event(r));
        } else if !fired_safe {
            fired_safe = true;
            batch.extend(fsm.on_event(OblEvent::Safe));
        }
        if batch.iter().any(|a| matches!(a, OblAction::IssueValidation)) {
            pending_validation = Some(step + 1 + val_delay);
        }
        actions.extend(batch);
    }
    // Post-completion responses must be ignored, not crash.
    for r in resp_iter {
        if fsm.is_done() {
            actions.extend(fsm.on_event(r));
        }
    }
    (fsm, actions)
}

proptest! {
    /// Under every interleaving the load eventually completes exactly
    /// once, and a value is forwarded before (or with) completion.
    #[test]
    fn fsm_always_completes_exactly_once(
        predicted in 1u8..=3,
        hit in prop::option::of(1u8..=3),
        exposure in any::<bool>(),
        early in any::<bool>(),
        safe_after in 0usize..6,
        val_delay in 0usize..5,
        val_value in any::<u64>(),
    ) {
        let hit_at = hit.filter(|h| *h <= predicted);
        let (fsm, actions) =
            drive_fsm(predicted, hit_at, exposure, early, safe_after, val_delay, val_value);
        let completes = actions.iter().filter(|a| matches!(a, OblAction::Complete)).count();
        prop_assert!(fsm.is_done(), "FSM must reach Done; actions: {actions:?}");
        prop_assert_eq!(completes, 1, "exactly one Complete; actions: {:?}", actions);
        prop_assert!(fsm.forwarded_value().is_some(), "a value must reach dependents");
    }

    /// A squash can only happen when the lookup failed after forwarding
    /// pre-safe (case 1) or when the validation value mismatched — never
    /// on a clean success.
    #[test]
    fn fsm_squashes_only_when_paper_says_so(
        predicted in 1u8..=3,
        hit in 1u8..=3,
        exposure in any::<bool>(),
        early in any::<bool>(),
        safe_after in 0usize..6,
        val_delay in 0usize..5,
    ) {
        prop_assume!(hit <= predicted);
        // Success with a matching validation value: no squash allowed.
        let (fsm, actions) =
            drive_fsm(predicted, Some(hit), exposure, early, safe_after, val_delay, 42);
        prop_assert!(
            !fsm.squashed(),
            "clean success must not squash; actions: {actions:?}"
        );
    }

    /// All-miss lookups whose fail is revealed only pre-safe (case 1)
    /// must squash; fails revealed post-safe (case 2/3) must not.
    #[test]
    fn fsm_fail_squash_matches_case(
        predicted in 1u8..=3,
        exposure in any::<bool>(),
        early in any::<bool>(),
        val_delay in 0usize..5,
        val_value in any::<u64>(),
    ) {
        // safe_after beyond all responses => case 1 (B before C).
        let (fsm1, _) = drive_fsm(
            predicted, None, exposure, early, predicted as usize + 1, val_delay, val_value,
        );
        prop_assert!(fsm1.squashed(), "case-1 fail must squash");
        // safe first => case 2/3, no squash.
        let (fsm2, _) = drive_fsm(predicted, None, exposure, early, 0, val_delay, val_value);
        prop_assert!(!fsm2.squashed(), "case-2/3 fail must not squash");
    }

    /// Predictors always answer with a legal level, never panic, for any
    /// update stream.
    #[test]
    fn predictors_total_over_random_histories(
        history in prop::collection::vec((0u64..64, 1u8..=4), 0..300),
        pc in 0u64..1_000,
    ) {
        let mut predictors: Vec<Box<dyn LocationPredictor>> = vec![
            Box::new(StaticPredictor::new(CacheLevel::L1)),
            Box::new(StaticPredictor::new(CacheLevel::L2)),
            Box::new(StaticPredictor::new(CacheLevel::L3)),
            Box::new(GreedyPredictor::default()),
            Box::new(LoopPredictor::default()),
            Box::new(HybridPredictor::default()),
            Box::new(PerfectPredictor),
        ];
        for p in &mut predictors {
            for &(hpc, depth) in &history {
                p.update(hpc, level_of(depth));
            }
            let pred = p.predict(pc, CacheLevel::L2);
            prop_assert!(pred.depth() >= 1 && pred.depth() <= 4);
        }
    }

    /// Greedy invariant: its prediction covers (is at least as deep as)
    /// every level seen in the last `m` updates for that pc.
    #[test]
    fn greedy_covers_its_window(
        depths in prop::collection::vec(1u8..=4, 1..40),
        window in 1usize..12,
    ) {
        let mut p = GreedyPredictor::new(64, window);
        let pc = 7;
        for &d in &depths {
            p.update(pc, level_of(d));
        }
        let pred = p.predict(pc, CacheLevel::L1);
        let recent_max = depths.iter().rev().take(window).copied().max().unwrap();
        prop_assert_eq!(pred.depth(), recent_max, "greedy = max of window");
    }

    /// The perfect predictor echoes the oracle for every residency.
    #[test]
    fn perfect_echoes_oracle(depth in 1u8..=4, pc in any::<u64>()) {
        let mut p = PerfectPredictor;
        prop_assert_eq!(p.predict(pc, level_of(depth)), level_of(depth));
    }
}
