//! The general SDO construction (Section IV of the paper).
//!
//! A microarchitect turns a transmitter `f(args)` into an SDO operation
//! `Obl-f(args)` in two steps:
//!
//! 1. design `N` *data-oblivious variants* `Obl-f_1 … Obl-f_N`, each with
//!    signature `success?, presult ← Obl-f_i(args)` (Equation 1), obeying
//!    Definition 1 (functional correctness) and Definition 2 (operand-
//!    independent resource usage);
//! 2. design a *DO predictor* `i ← predict(inp)` / `update((inp, actual i))`
//!    (Equations 2–3) choosing which variant to execute, whose inputs are
//!    untainted (public) information only — in this paper, the PC.
//!
//! [`SdoOperation`] is Figure 2 in executable form: `issue` is Part 1
//! (predict, run the chosen variant, return the tainted `presult`), and
//! `resolve` is Part 2 (once `args` is untainted: reveal `success?`,
//! update the predictor on success, or report that a squash + re-issue is
//! required on fail).

use std::fmt;

/// Result of executing one DO variant (Equation 1).
///
/// If `success` is true, `presult` must equal the original transmitter's
/// result (Definition 1); if false, `presult` is ⊥ (`None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoResult<R> {
    /// The `success?` flag.
    pub success: bool,
    /// `presult`: the (possibly ⊥) result.
    pub presult: Option<R>,
}

impl<R> DoResult<R> {
    /// A successful execution returning `value`.
    #[must_use]
    pub fn success(value: R) -> Self {
        DoResult { success: true, presult: Some(value) }
    }

    /// A failed execution (`presult` = ⊥).
    #[must_use]
    pub fn fail() -> Self {
        DoResult { success: false, presult: None }
    }
}

/// One data-oblivious variant `Obl-f_i` of a transmitter `f`.
///
/// Implementations must uphold the two definitions of Section IV-A:
///
/// * **Definition 1** — on `success`, `presult == f(args)`; on `fail`,
///   `presult` is ⊥.
/// * **Definition 2** — execution creates the same hardware resource
///   interference for any two operand assignments. In a software model
///   this translates to: any *timing/occupancy* the variant reports to the
///   simulator must be independent of `args`.
pub trait DoVariant<A: ?Sized, R> {
    /// Executes the variant on `args`.
    fn execute(&mut self, args: &A) -> DoResult<R>;

    /// Human-readable variant name (e.g. `"Obl-Ld2"`).
    fn label(&self) -> &str;
}

/// The DO predictor of Section IV-B: selects which variant to run.
///
/// `predict`'s input and `update`'s timing must be functions of untainted
/// data; under STT that holds for the PC, and updates are deferred until
/// the transmitter's operands untaint (Figure 2, lines 11–16) — the
/// *caller* (the pipeline) enforces the deferral, this trait just receives
/// the calls.
pub trait VariantPredictor {
    /// Predicts the 0-based index of the variant to execute for this
    /// (public) predictor input.
    fn predict(&mut self, inp: u64) -> usize;

    /// Updates predictor state once the outcome is untainted. `actual` is
    /// the variant index that would have succeeded (if known).
    fn update(&mut self, inp: u64, actual: usize);
}

/// A complete SDO operation `Obl-f` (Figure 2): `N` DO variants plus a DO
/// predictor.
///
/// # Examples
///
/// The paper's floating-point example — two execution classes (fast =
/// normal operands, slow = subnormal), one DO variant for the fast class,
/// and a static "predict fast" predictor:
///
/// ```rust
/// use sdo_core::framework::{DoResult, DoVariant, SdoOperation, VariantPredictor};
///
/// struct FastFp;
/// impl DoVariant<(f64, f64), f64> for FastFp {
///     fn execute(&mut self, &(a, b): &(f64, f64)) -> DoResult<f64> {
///         if a.is_subnormal() || b.is_subnormal() {
///             DoResult::fail() // would take the slow path: not covered
///         } else {
///             DoResult::success(a * b)
///         }
///     }
///     fn label(&self) -> &str { "fmul-fast" }
/// }
///
/// struct AlwaysFirst;
/// impl VariantPredictor for AlwaysFirst {
///     fn predict(&mut self, _inp: u64) -> usize { 0 }
///     fn update(&mut self, _inp: u64, _actual: usize) {}
/// }
///
/// let mut op = SdoOperation::new(vec![Box::new(FastFp)], Box::new(AlwaysFirst));
/// let (idx, r) = op.issue(0x400, &(2.0, 3.0));
/// assert_eq!((idx, r.presult), (0, Some(6.0)));
/// assert!(!op.resolve(0x400, idx, r.success, None), "no squash needed");
///
/// let (_, r) = op.issue(0x400, &(f64::MIN_POSITIVE / 2.0, 3.0));
/// assert!(!r.success, "subnormal input fails the fast variant");
/// ```
pub struct SdoOperation<A: ?Sized, R> {
    variants: Vec<Box<dyn DoVariant<A, R>>>,
    predictor: Box<dyn VariantPredictor>,
}

impl<A: ?Sized, R> fmt::Debug for SdoOperation<A, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SdoOperation")
            .field("variants", &self.variants.iter().map(|v| v.label().to_owned()).collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl<A: ?Sized, R> SdoOperation<A, R> {
    /// Builds an SDO operation from its variants and predictor.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty (N ≥ 1 is required).
    #[must_use]
    pub fn new(
        variants: Vec<Box<dyn DoVariant<A, R>>>,
        predictor: Box<dyn VariantPredictor>,
    ) -> Self {
        assert!(!variants.is_empty(), "an SDO operation needs at least one DO variant");
        SdoOperation { variants, predictor }
    }

    /// Number of DO variants (`N`).
    #[must_use]
    pub fn num_variants(&self) -> usize {
        self.variants.len()
    }

    /// **Part 1 of Figure 2** — on issue with tainted `args`: predict a
    /// variant from public input `inp` (e.g. the PC) and execute it.
    /// Returns the chosen index and the (tainted) result, which the caller
    /// forwards to dependents unconditionally.
    pub fn issue(&mut self, inp: u64, args: &A) -> (usize, DoResult<R>) {
        let idx = self.predictor.predict(inp).min(self.variants.len() - 1);
        let result = self.variants[idx].execute(args);
        (idx, result)
    }

    /// **Part 2 of Figure 2** — when `args` becomes untainted, `success?`
    /// may be revealed. On success the predictor is updated; on fail the
    /// caller must squash starting at the transmitter and re-issue it
    /// non-obliviously (the optional `actual` index, if known, still
    /// trains the predictor).
    ///
    /// Returns `true` iff a squash + re-issue is required.
    pub fn resolve(&mut self, inp: u64, chosen: usize, success: bool, actual: Option<usize>) -> bool {
        if success {
            self.predictor.update(inp, chosen);
            false
        } else {
            if let Some(actual) = actual {
                self.predictor.update(inp, actual);
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A variant that succeeds iff the argument is below a threshold.
    struct Below(u64);
    impl DoVariant<u64, u64> for Below {
        fn execute(&mut self, args: &u64) -> DoResult<u64> {
            if *args < self.0 {
                DoResult::success(args * 2)
            } else {
                DoResult::fail()
            }
        }
        fn label(&self) -> &str {
            "below"
        }
    }

    struct CountingPredictor {
        next: usize,
        updates: Rc<Cell<usize>>,
    }
    impl VariantPredictor for CountingPredictor {
        fn predict(&mut self, _inp: u64) -> usize {
            self.next
        }
        fn update(&mut self, _inp: u64, _actual: usize) {
            self.updates.set(self.updates.get() + 1);
        }
    }

    fn op_with(next: usize) -> (SdoOperation<u64, u64>, Rc<Cell<usize>>) {
        let updates = Rc::new(Cell::new(0));
        let pred = CountingPredictor { next, updates: Rc::clone(&updates) };
        let op = SdoOperation::new(
            vec![Box::new(Below(10)), Box::new(Below(100))],
            Box::new(pred),
        );
        (op, updates)
    }

    #[test]
    fn issue_runs_predicted_variant() {
        let (mut op, _) = op_with(0);
        let (idx, r) = op.issue(0, &5);
        assert_eq!(idx, 0);
        assert_eq!(r, DoResult::success(10));
        let (_, r) = op.issue(0, &50);
        assert_eq!(r, DoResult::fail(), "variant 0 cannot cover 50");
    }

    #[test]
    fn second_variant_covers_more() {
        let (mut op, _) = op_with(1);
        let (idx, r) = op.issue(0, &50);
        assert_eq!(idx, 1);
        assert_eq!(r, DoResult::success(100));
    }

    #[test]
    fn prediction_index_clamped() {
        let (mut op, _) = op_with(99);
        let (idx, _) = op.issue(0, &5);
        assert_eq!(idx, 1, "out-of-range prediction clamps to N-1");
    }

    #[test]
    fn resolve_success_updates_predictor() {
        let (mut op, updates) = op_with(0);
        let squash = op.resolve(0, 0, true, None);
        assert!(!squash);
        assert_eq!(updates.get(), 1);
    }

    #[test]
    fn resolve_fail_requires_squash() {
        let (mut op, updates) = op_with(0);
        let squash = op.resolve(0, 0, false, None);
        assert!(squash);
        assert_eq!(updates.get(), 0, "no update when the correct class is unknown");
        // With the actual class known (e.g. from validation), update.
        assert!(op.resolve(0, 0, false, Some(1)));
        assert_eq!(updates.get(), 1);
    }

    #[test]
    fn do_result_constructors() {
        assert_eq!(DoResult::success(7).presult, Some(7));
        assert_eq!(DoResult::<u64>::fail().presult, None);
        assert!(!DoResult::<u64>::fail().success);
    }

    #[test]
    #[should_panic(expected = "at least one DO variant")]
    fn empty_variant_list_panics() {
        let updates = Rc::new(Cell::new(0));
        let _ = SdoOperation::<u64, u64>::new(
            vec![],
            Box::new(CountingPredictor { next: 0, updates }),
        );
    }

    #[test]
    fn debug_lists_variant_labels() {
        let (op, _) = op_with(0);
        let dbg = format!("{op:?}");
        assert!(dbg.contains("below"));
    }
}
