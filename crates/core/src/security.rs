//! # Security argument (paper Section VII), mapped to this codebase
//!
//! The paper proves STT+SDO preserves STT's guarantee — *"the value of a
//! doomed (transient) register does not influence future visible
//! events"* — via two claims. This module documents where each proof
//! obligation is discharged in the reproduction, and carries executable
//! checks for the obligations that are local to this crate.
//!
//! ## Claim 1 — SDO operations leak no more than delayed execution
//!
//! *"Implementing transmitter `f(args)` as SDO operation `Obl-f(args)`
//! leaks equivalent privacy as delay-executing `f(args)` until `args` are
//! untainted."*
//!
//! The proof needs three properties:
//!
//! 1. **Predictions are functions of non-speculative data** (Equation 2).
//!    Every [`LocationPredictor`](crate::predictor::LocationPredictor)
//!    takes only the load's PC, which STT keeps untainted; the pipeline
//!    (`sdo-uarch`) passes nothing else. The `Perfect` predictor's oracle
//!    input is an evaluation device, as in the paper.
//! 2. **Updates/resolutions are deferred until `args` untaints**
//!    (Figure 2, lines 11–16). The
//!    [`OblLdFsm`](crate::oblld::OblLdFsm) emits
//!    [`UpdatePredictor`](crate::oblld::OblAction::UpdatePredictor) and
//!    [`Squash`](crate::oblld::OblAction::Squash) only at or after the
//!    [`Safe`](crate::oblld::OblEvent::Safe) event — checked below and by
//!    the property tests in `tests/properties.rs`.
//! 3. **Each DO variant is a non-transmitter** (Definition 2): its
//!    resource usage is operand-independent. Enforced by construction in
//!    `sdo-mem` (full-bank reservations, first-free MSHR choice,
//!    all-slice L3 broadcast, no fills/LRU updates, TLB probe without
//!    fill) and checked by the property test
//!    `obl_lookup_timing_is_address_independent`, which compares the
//!    complete timing trace of lookups to different addresses under
//!    arbitrary prior cache states.
//!
//! ## Claim 2 — untainted access-instruction outputs are correct
//!
//! *"Data returned by an access instruction is untainted only if that
//! data corresponds to correct speculation."*
//!
//! Case analysis from the paper, in code:
//!
//! * **Forwarded + success**: Definition 1 ties `presult` to the true
//!   value (`obl_lookup_success_returns_true_value` property test); the
//!   FSM forwards the first-success value only.
//! * **Forwarded + fail**: the FSM squashes at the untaint point
//!   (`case1_fail_squashes_at_safe` test) *and* the pipeline marks the
//!   destination register not-ready before re-fetch, so no squashed
//!   dependent can read the stale ⊥.
//! * **Not yet forwarded**: a post-safe success forwards real data
//!   (case 2); a fail is dropped and the validation's result — a normal
//!   load — is forwarded instead (case 2/3 tests).
//!
//! ## End-to-end evidence
//!
//! The whole-system consequences are tested at the workspace level:
//!
//! * `tests/pentest.rs` — Spectre V1 leaks on `Unsafe`, is blocked by
//!   every protected variant, and **total cycle counts are bit-for-bit
//!   independent of the planted secret** under protection
//!   (noninterference).
//! * `tests/cross_core.rs` — the same holds for a cross-core shared-LLC
//!   receiver.

#[cfg(test)]
mod tests {
    use crate::oblld::{OblAction, OblEvent, OblLdFsm};
    use crate::predictor::{
        GreedyPredictor, HybridPredictor, LocationPredictor, LoopPredictor, PatternPredictor,
        StaticPredictor,
    };
    use sdo_mem::{CacheLevel, MemConfig, MemorySystem};

    /// Claim 1, obligation 1 (Equation 2): every deployable predictor is
    /// a pure function of the load's (public) PC and its own untainted
    /// training history. Two copies fed the same PC/training stream but
    /// *different* oracle residency must predict identically — i.e. the
    /// oracle argument (address-derived, potentially tainted state) is
    /// dead except in the evaluation-only `Perfect` predictor.
    #[test]
    fn claim1_ob1_predictions_are_functions_of_pc_only() {
        let ctors: [fn() -> Box<dyn LocationPredictor>; 5] = [
            || Box::new(StaticPredictor::new(CacheLevel::L2)),
            || Box::new(GreedyPredictor::new(64, 8)),
            || Box::new(LoopPredictor::new(64)),
            || Box::new(HybridPredictor::new(64)),
            || Box::new(PatternPredictor::new(64, 64)),
        ];
        for ctor in ctors {
            let mut a = ctor();
            let mut b = ctor();
            for i in 0..256u64 {
                let pc = (i * 37 % 16) * 4;
                let pa = a.predict(pc, CacheLevel::L1);
                let pb = b.predict(pc, CacheLevel::Dram);
                assert_eq!(pa, pb, "{}: oracle residency influenced a prediction", a.name());
                let actual = CacheLevel::from_depth_clamped((i % 3 + 1) as u8);
                a.update(pc, actual);
                b.update(pc, actual);
            }
        }
    }

    /// Claim 1, obligation 3 (Definition 2): the Obl-Ld lookup's timing
    /// is operand-independent — the per-level response schedule and the
    /// completion time depend only on the predicted slice, not on the
    /// probed address or on which levels happen to hold the line.
    #[test]
    fn claim1_ob3_obl_lookup_timing_is_address_and_residency_independent() {
        // (warm-load address, probe address): resident vs cold probes
        // under different prior cache states.
        let scenarios: [(u64, u64); 4] = [
            (0x1000, 0x1000),     // probe hits L1
            (0x1000, 0x9000),     // probe misses everywhere
            (0x80_0000, 0x2000),  // different warm set, cold probe
            (0x80_0000, 0x80_0000), // different warm set, resident probe
        ];
        let mut timings = Vec::new();
        for (warm, probe) in scenarios {
            let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
            let now = mem.load(0, warm, 0).complete_at;
            let l = mem.obl_lookup(0, probe, CacheLevel::L3, now).expect("mshr free");
            let ats: Vec<u64> = l.responses.iter().map(|r| r.at - now).collect();
            timings.push((ats, l.complete_at - now));
        }
        for t in &timings[1..] {
            assert_eq!(*t, timings[0], "Obl-Ld timing leaked address/residency");
        }
    }

    /// Claim 1, obligation 2: no predictor update and no squash can be
    /// emitted while the FSM is still pre-Safe, for any response pattern.
    #[test]
    fn claim1_ob2_no_sensitive_actions_before_safe() {
        for hit_level in [None, Some(1u8), Some(2), Some(3)] {
            for exposure in [false, true] {
                for early in [false, true] {
                    let mut fsm = OblLdFsm::new(0, CacheLevel::L3, exposure, early);
                    for d in 1..=3u8 {
                        let hit = hit_level == Some(d);
                        let actions = fsm.on_event(OblEvent::Response {
                            level: CacheLevel::from_depth_clamped(d),
                            hit,
                            value: hit.then_some(9),
                        });
                        for a in &actions {
                            assert!(
                                matches!(a, OblAction::Forward { .. }),
                                "pre-Safe, only the (tainted) forward is allowed, got {a:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Claim 1, obligation 2 (converse): the squash of a concealed fail
    /// happens exactly at the Safe event, not earlier and not never.
    #[test]
    fn claim1_ob2_concealed_fail_squashes_exactly_at_safe() {
        let mut fsm = OblLdFsm::new(0, CacheLevel::L1, false, true);
        let pre = fsm.on_event(OblEvent::Response { level: CacheLevel::L1, hit: false, value: None });
        assert!(!fsm.squashed(), "fail must stay concealed pre-Safe: {pre:?}");
        let at_safe = fsm.on_event(OblEvent::Safe);
        assert!(fsm.squashed());
        assert!(at_safe.contains(&OblAction::Squash));
    }

    /// Claim 1, obligation 2: the ⊥ forwarded for a concealed fail is a
    /// constant (all-zero), not a function of anything address-derived.
    #[test]
    fn claim1_ob2_concealed_fail_forwards_constant_bottom() {
        for depth in 1..=3u8 {
            let mut fsm = OblLdFsm::new(0xabc, CacheLevel::from_depth_clamped(depth), false, true);
            let mut forwarded = None;
            for d in 1..=depth {
                let acts = fsm.on_event(OblEvent::Response {
                    level: CacheLevel::from_depth_clamped(d),
                    hit: false,
                    value: None,
                });
                for a in acts {
                    if let OblAction::Forward { value } = a {
                        forwarded = Some(value);
                    }
                }
            }
            assert_eq!(forwarded, Some(0), "⊥ must be the constant 0");
        }
    }
}
