//! # sdo-core — Speculative Data-Oblivious Execution (SDO)
//!
//! The primary contribution of *"Speculative Data-Oblivious Execution:
//! Mobilizing Safe Prediction For Safe and Efficient Speculative
//! Execution"* (ISCA 2020), as a reusable library:
//!
//! * [`framework`] — the general SDO construction of Section IV: N
//!   *data-oblivious variants* of a transmitter (Definition 1: functional
//!   correctness; Definition 2: operand-independent resource usage) plus a
//!   *DO predictor* choosing which variant to execute (Figure 2).
//! * [`predictor`] — location predictors for the Obl-Ld operation
//!   (Section V-D): the static L1/L2/L3 predictors, the *greedy* and
//!   *loop* predictors, the *hybrid* chooser between them, and the
//!   *perfect* oracle used to bound achievable performance.
//! * [`oblld`] — the Obl-Ld operation's wait buffer and per-load state
//!   machine covering the three legal event orderings of Section V-C2
//!   (issue **A**, oblivious-lookup completion **B**, untaint/safe **C**,
//!   validation completion **D**) with the early-forwarding optimization
//!   and InvisiSpec-style validation/exposure selection.
//! * [`fp`] — the floating-point SDO operation from Section I-A: predict
//!   operands normal, execute the fast (data-oblivious) variant, `fail`
//!   on subnormal inputs.
//!
//! The cycle-level integration of these pieces into an out-of-order STT
//! pipeline lives in the `sdo-uarch` crate; everything here is pure logic
//! and independently testable.
//!
//! ## Security contract
//!
//! Each DO variant must satisfy the paper's two definitions:
//!
//! 1. **Functional correctness** — if a variant reports `success`, its
//!    `presult` equals the original transmitter's result; on `fail` the
//!    result is ⊥.
//! 2. **Security (data obliviousness)** — executing the variant creates
//!    operand-independent hardware resource usage. In this codebase that
//!    property is enforced by construction in `sdo-mem` (full-bank
//!    reservations, first-free MSHRs, all-slice broadcasts) and checked by
//!    tests that compare timing traces across operand values.
//!
//! ## Example: predicting a load's cache level
//!
//! ```rust
//! use sdo_core::predictor::{HybridPredictor, LocationPredictor};
//! use sdo_mem::CacheLevel;
//!
//! let mut pred = HybridPredictor::default();
//! let pc = 0x42;
//! // A load that strides: one L2 miss per four L1 hits.
//! for _ in 0..8 {
//!     for _ in 0..3 {
//!         pred.update(pc, CacheLevel::L1);
//!     }
//!     pred.update(pc, CacheLevel::L2);
//! }
//! let p = pred.predict(pc, CacheLevel::L1);
//! assert!(p == CacheLevel::L1 || p == CacheLevel::L2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fp;
pub mod framework;
pub mod oblld;
pub mod predictor;
pub mod security;

pub use fp::{fp_do_execute, FpClass};
pub use framework::{DoResult, DoVariant, SdoOperation, VariantPredictor};
pub use oblld::{OblAction, OblEvent, OblLdFsm, WaitBuffer};
pub use predictor::{
    GreedyPredictor, HybridPredictor, LocationPredictor, LoopPredictor, PatternPredictor,
    PerfectPredictor, StaticPredictor,
};
