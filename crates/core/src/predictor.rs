//! Location predictors for the Obl-Ld operation (Section V-D).
//!
//! A location predictor maps a load's **PC** (public under STT) to the
//! cache level its data is expected in. Terminology from the paper: if a
//! load needed level *i* and the predictor said *j*, the prediction is
//! *accurate* when `j >= i` (no squash; possible extra latency) and
//! *precise* when `j == i` (no wasted latency either).
//!
//! Implemented predictors, matching Table II:
//!
//! * [`StaticPredictor`] — always predicts a fixed level (Static L1/L2/L3).
//! * [`GreedyPredictor`] — deepest level seen in the last *m* dynamic
//!   instances of the load; favors accuracy over precision.
//! * [`LoopPredictor`] — detects strided patterns ("one L1 miss per N
//!   accesses") and predicts the deep level exactly on the expected beat.
//! * [`HybridPredictor`] — the paper's proposal: chooses between greedy
//!   and loop per-PC with a saturating confidence counter.
//! * [`PerfectPredictor`] — oracle (always the true residency); bounds the
//!   achievable performance of the SDO approach.
//!
//! Predictors may return [`CacheLevel::Dram`]; the pipeline then falls
//! back to STT-style delayed execution instead of issuing an Obl-Ld
//! (Section VI-B), avoiding a guaranteed-fail lookup.

use sdo_mem::CacheLevel;
use std::fmt;

/// Interface of every location predictor.
///
/// `oracle` carries the true current residency of the accessed line; only
/// [`PerfectPredictor`] reads it (the evaluation's upper bound), real
/// predictors must ignore it. `update` is called only when the load's
/// address is untainted, per Figure 2 — the pipeline enforces that timing.
pub trait LocationPredictor: fmt::Debug {
    /// Predicts the level for the load at `pc`.
    fn predict(&mut self, pc: u64, oracle: CacheLevel) -> CacheLevel;

    /// Trains with the level the data was actually found in.
    fn update(&mut self, pc: u64, actual: CacheLevel);

    /// Display name (used in experiment tables).
    fn name(&self) -> &'static str;
}

/// Always predicts one fixed level (Table II: Static L1 / L2 / L3).
#[derive(Debug, Clone, Copy)]
pub struct StaticPredictor {
    level: CacheLevel,
}

impl StaticPredictor {
    /// Creates a static predictor for `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is [`CacheLevel::Dram`] — a static-DRAM predictor
    /// would delay every load, i.e. vanilla STT.
    #[must_use]
    pub fn new(level: CacheLevel) -> Self {
        assert!(level.is_cache(), "static predictor must target an on-chip cache");
        StaticPredictor { level }
    }
}

impl LocationPredictor for StaticPredictor {
    fn predict(&mut self, _pc: u64, _oracle: CacheLevel) -> CacheLevel {
        self.level
    }

    fn update(&mut self, _pc: u64, _actual: CacheLevel) {}

    fn name(&self) -> &'static str {
        match self.level {
            CacheLevel::L1 => "Static L1",
            CacheLevel::L2 => "Static L2",
            CacheLevel::L3 => "Static L3",
            CacheLevel::Dram => unreachable!("rejected in constructor"),
        }
    }
}

/// Oracle predictor: always the true residency (Table II: Perfect).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectPredictor;

impl LocationPredictor for PerfectPredictor {
    fn predict(&mut self, _pc: u64, oracle: CacheLevel) -> CacheLevel {
        oracle
    }

    fn update(&mut self, _pc: u64, _actual: CacheLevel) {}

    fn name(&self) -> &'static str {
        "Perfect"
    }
}

/// A small direct-mapped, PC-tagged table — the hardware budget knob for
/// the dynamic predictors (the paper's hybrid uses 4 KB of state).
#[derive(Debug, Clone)]
struct PcTable<E> {
    entries: Vec<Option<(u64, E)>>,
}

impl<E: Default + Clone> PcTable<E> {
    fn new(size: usize) -> Self {
        assert!(size.is_power_of_two(), "table size must be a power of two");
        PcTable { entries: vec![None; size] }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc ^ (pc >> 9)) as usize) & (self.entries.len() - 1)
    }

    /// The entry for `pc`, allocating (and evicting an alias) on demand.
    fn entry_mut(&mut self, pc: u64) -> &mut E {
        let idx = self.index(pc);
        let slot = &mut self.entries[idx];
        match slot {
            Some((tag, _)) if *tag == pc => {}
            _ => *slot = Some((pc, E::default())),
        }
        &mut slot.as_mut().expect("just filled").1
    }

    /// Read-only view, `None` when absent or aliased away.
    fn get(&self, pc: u64) -> Option<&E> {
        match &self.entries[self.index(pc)] {
            Some((tag, e)) if *tag == pc => Some(e),
            _ => None,
        }
    }
}

const GREEDY_WINDOW: usize = 8;

#[derive(Debug, Clone)]
struct GreedyEntry {
    /// Depths (1..=4) of the last `m` instances, newest last.
    history: Vec<u8>,
}

impl Default for GreedyEntry {
    fn default() -> Self {
        GreedyEntry { history: Vec::with_capacity(GREEDY_WINDOW) }
    }
}

/// Predicts the deepest level seen in the last *m* dynamic instances of
/// the load (Section V-D, access pattern 1: coarse-grained level changes).
///
/// "It favors imprecision over inaccuracy to avoid potential
/// mis-predictions": any level seen recently is covered, at the cost of
/// waiting out the deepest lookup.
#[derive(Debug, Clone)]
pub struct GreedyPredictor {
    table: PcTable<GreedyEntry>,
    window: usize,
}

impl GreedyPredictor {
    /// Creates a greedy predictor with `table_size` PC entries (power of
    /// two) and history window `window`.
    ///
    /// # Panics
    ///
    /// Panics if `table_size` is not a power of two or `window` is 0.
    #[must_use]
    pub fn new(table_size: usize, window: usize) -> Self {
        assert!(window > 0, "greedy window must be positive");
        GreedyPredictor { table: PcTable::new(table_size), window }
    }

    /// Prediction without mutating the table (used by the hybrid chooser).
    #[must_use]
    pub fn peek(&self, pc: u64) -> CacheLevel {
        match self.table.get(pc) {
            Some(e) if !e.history.is_empty() => {
                CacheLevel::from_depth_clamped(e.history.iter().copied().max().unwrap_or(1))
            }
            // Cold PC: optimistic L1 (first instance trains the entry).
            _ => CacheLevel::L1,
        }
    }
}

impl Default for GreedyPredictor {
    fn default() -> Self {
        Self::new(512, GREEDY_WINDOW)
    }
}

impl LocationPredictor for GreedyPredictor {
    fn predict(&mut self, pc: u64, _oracle: CacheLevel) -> CacheLevel {
        self.peek(pc)
    }

    fn update(&mut self, pc: u64, actual: CacheLevel) {
        let window = self.window;
        let e = self.table.entry_mut(pc);
        e.history.push(actual.depth());
        if e.history.len() > window {
            e.history.remove(0);
        }
    }

    fn name(&self) -> &'static str {
        "Greedy"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    /// Confirmed count of L1 hits between deep accesses.
    period: u8,
    /// L1 hits seen since the last deep access.
    run: u8,
    /// Depth of the recurring deep level.
    deep: u8,
    /// Saturating confidence that `period` is stable (0..=3).
    conf: u8,
}

/// Detects "mostly L1 hits with a predictable deeper hit every N-th
/// access" (Section V-D, access pattern 2) — e.g. streaming through
/// memory with a constant stride, one L1 miss per `64/stride` accesses.
///
/// Behaves like a loop branch predictor: it learns the period and predicts
/// the deep level exactly on the expected beat, L1 otherwise.
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    table: PcTable<LoopEntry>,
}

impl LoopPredictor {
    /// Creates a loop predictor with `table_size` PC entries.
    #[must_use]
    pub fn new(table_size: usize) -> Self {
        LoopPredictor { table: PcTable::new(table_size) }
    }

    /// Prediction without mutating the table.
    #[must_use]
    pub fn peek(&self, pc: u64) -> CacheLevel {
        match self.table.get(pc) {
            Some(e) if e.conf >= 2 && e.period > 0 && e.run >= e.period => {
                CacheLevel::from_depth_clamped(e.deep)
            }
            Some(e) if e.conf >= 2 || e.deep == 0 => CacheLevel::L1,
            // Deep level seen but no stable period yet: fall back to the
            // deep level (accurate) until confidence builds.
            Some(e) => CacheLevel::from_depth_clamped(e.deep),
            None => CacheLevel::L1,
        }
    }
}

impl Default for LoopPredictor {
    fn default() -> Self {
        Self::new(512)
    }
}

impl LocationPredictor for LoopPredictor {
    fn predict(&mut self, pc: u64, _oracle: CacheLevel) -> CacheLevel {
        self.peek(pc)
    }

    fn update(&mut self, pc: u64, actual: CacheLevel) {
        let e = self.table.entry_mut(pc);
        if actual == CacheLevel::L1 {
            e.run = e.run.saturating_add(1);
        } else {
            if e.deep == actual.depth() && e.run == e.period && e.period > 0 {
                e.conf = (e.conf + 1).min(3);
            } else {
                e.conf = e.conf.saturating_sub(1);
                e.period = e.run;
            }
            e.deep = actual.depth();
            e.run = 0;
        }
    }

    fn name(&self) -> &'static str {
        "Loop"
    }
}

/// The paper's proposed **hybrid location predictor** (Section V-D):
/// internally a [`GreedyPredictor`] and a [`LoopPredictor`], chosen
/// between per-PC by a saturating confidence counter, trained by which
/// sub-predictor would have been precise for each resolved load.
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    greedy: GreedyPredictor,
    loop_: LoopPredictor,
    /// Per-PC chooser: 0..=3; >= 2 selects the loop predictor.
    chooser: PcTable<u8>,
}

impl HybridPredictor {
    /// Creates a hybrid predictor with `table_size` entries per component
    /// (512 each ≈ the paper's 4 KB budget).
    #[must_use]
    pub fn new(table_size: usize) -> Self {
        HybridPredictor {
            greedy: GreedyPredictor::new(table_size, GREEDY_WINDOW),
            loop_: LoopPredictor::new(table_size),
            chooser: PcTable::new(table_size),
        }
    }
}

impl Default for HybridPredictor {
    fn default() -> Self {
        Self::new(512)
    }
}

impl LocationPredictor for HybridPredictor {
    fn predict(&mut self, pc: u64, _oracle: CacheLevel) -> CacheLevel {
        let use_loop = self.chooser.get(pc).copied().unwrap_or(1) >= 2;
        if use_loop {
            self.loop_.peek(pc)
        } else {
            self.greedy.peek(pc)
        }
    }

    fn update(&mut self, pc: u64, actual: CacheLevel) {
        // Judge both components on what they would have predicted *before*
        // this outcome, then train them and the chooser.
        let g = self.greedy.peek(pc);
        let l = self.loop_.peek(pc);
        let g_precise = g == actual;
        let l_precise = l == actual;
        let conf = self.chooser.entry_mut(pc);
        if *conf == 0 {
            *conf = 1; // cold entries start greedy-leaning but mobile
        }
        if l_precise && !g_precise {
            *conf = (*conf + 1).min(3);
        } else if g_precise && !l_precise {
            *conf = conf.saturating_sub(1).max(1);
        }
        self.greedy.update(pc, actual);
        self.loop_.update(pc, actual);
    }

    fn name(&self) -> &'static str {
        "Hybrid"
    }
}

/// **Extension beyond the paper**: a two-level *pattern* predictor.
///
/// The paper deliberately stops at the hybrid greedy/loop design ("the
/// goal of this paper is to show the SDO framework is viable, not to
/// invent a state-of-the-art predictor", Section V-D). This predictor
/// explores the obvious next step: a per-PC *level-history register*
/// (the last [`PATTERN_HISTORY`] observed levels, 2 bits each) indexing a
/// pattern history table of saturating level predictions — the location-
/// prediction analogue of a two-level branch predictor. It captures
/// multi-level repeating sequences (e.g. `L2 L2 L3` loops) that neither
/// greedy nor loop can express.
#[derive(Debug, Clone)]
pub struct PatternPredictor {
    hist: PcTable<u16>,
    pht: Vec<(u8, u8)>, // (predicted depth, confidence 0..=3)
    fallback: GreedyPredictor,
}

/// Levels of history folded into the pattern signature.
pub const PATTERN_HISTORY: usize = 6;

impl PatternPredictor {
    /// Creates a pattern predictor with `table_size` per-PC history
    /// entries and a `pht_size`-entry pattern table (both powers of two).
    #[must_use]
    pub fn new(table_size: usize, pht_size: usize) -> Self {
        assert!(pht_size.is_power_of_two(), "PHT size must be a power of two");
        PatternPredictor {
            hist: PcTable::new(table_size),
            pht: vec![(0, 0); pht_size],
            fallback: GreedyPredictor::new(table_size, GREEDY_WINDOW),
        }
    }

    fn pht_index(&self, pc: u64, hist: u16) -> usize {
        let h = pc ^ (pc >> 7) ^ (u64::from(hist) << 3);
        (h as usize) & (self.pht.len() - 1)
    }

    fn peek(&self, pc: u64) -> CacheLevel {
        let hist = self.hist.get(pc).copied().unwrap_or(0);
        let (depth, conf) = self.pht[self.pht_index(pc, hist)];
        if conf >= 2 && depth > 0 {
            CacheLevel::from_depth_clamped(depth)
        } else {
            self.fallback.peek(pc)
        }
    }
}

impl Default for PatternPredictor {
    fn default() -> Self {
        Self::new(512, 4096)
    }
}

impl LocationPredictor for PatternPredictor {
    fn predict(&mut self, pc: u64, _oracle: CacheLevel) -> CacheLevel {
        self.peek(pc)
    }

    fn update(&mut self, pc: u64, actual: CacheLevel) {
        let hist = self.hist.get(pc).copied().unwrap_or(0);
        let idx = self.pht_index(pc, hist);
        let (depth, conf) = &mut self.pht[idx];
        if *depth == actual.depth() {
            *conf = (*conf + 1).min(3);
        } else if *conf == 0 {
            *depth = actual.depth();
            *conf = 1;
        } else {
            *conf -= 1;
        }
        let h = self.hist.entry_mut(pc);
        let mask = (1u16 << (2 * PATTERN_HISTORY)) - 1;
        *h = ((*h << 2) | u16::from(actual.depth() - 1)) & mask;
        self.fallback.update(pc, actual);
    }

    fn name(&self) -> &'static str {
        "Pattern"
    }
}

impl LocationPredictor for Box<dyn LocationPredictor> {
    fn predict(&mut self, pc: u64, oracle: CacheLevel) -> CacheLevel {
        self.as_mut().predict(pc, oracle)
    }

    fn update(&mut self, pc: u64, actual: CacheLevel) {
        self.as_mut().update(pc, actual);
    }

    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PC: u64 = 0x1234;

    #[test]
    fn static_predictors_are_constant() {
        for level in [CacheLevel::L1, CacheLevel::L2, CacheLevel::L3] {
            let mut p = StaticPredictor::new(level);
            assert_eq!(p.predict(PC, CacheLevel::Dram), level);
            p.update(PC, CacheLevel::L1);
            assert_eq!(p.predict(0xdead, CacheLevel::L1), level);
        }
        assert_eq!(StaticPredictor::new(CacheLevel::L2).name(), "Static L2");
    }

    #[test]
    #[should_panic(expected = "on-chip cache")]
    fn static_dram_rejected() {
        let _ = StaticPredictor::new(CacheLevel::Dram);
    }

    #[test]
    fn perfect_returns_oracle() {
        let mut p = PerfectPredictor;
        assert_eq!(p.predict(PC, CacheLevel::L3), CacheLevel::L3);
        assert_eq!(p.predict(PC, CacheLevel::Dram), CacheLevel::Dram);
        assert_eq!(p.name(), "Perfect");
    }

    #[test]
    fn greedy_cold_predicts_l1() {
        let mut p = GreedyPredictor::default();
        assert_eq!(p.predict(PC, CacheLevel::Dram), CacheLevel::L1);
    }

    #[test]
    fn greedy_predicts_deepest_in_window() {
        let mut p = GreedyPredictor::new(64, 4);
        p.update(PC, CacheLevel::L1);
        p.update(PC, CacheLevel::L3);
        p.update(PC, CacheLevel::L1);
        assert_eq!(p.predict(PC, CacheLevel::L1), CacheLevel::L3);
        // Push the L3 out of the window with L1s.
        for _ in 0..4 {
            p.update(PC, CacheLevel::L1);
        }
        assert_eq!(p.predict(PC, CacheLevel::L1), CacheLevel::L1);
    }

    #[test]
    fn greedy_covers_dram_observations() {
        let mut p = GreedyPredictor::default();
        p.update(PC, CacheLevel::Dram);
        assert_eq!(p.predict(PC, CacheLevel::L1), CacheLevel::Dram, "predict DRAM ⇒ pipeline delays");
    }

    #[test]
    fn greedy_pcs_are_independent() {
        let mut p = GreedyPredictor::default();
        p.update(PC, CacheLevel::L3);
        assert_eq!(p.predict(PC + 1, CacheLevel::L1), CacheLevel::L1);
    }

    #[test]
    fn loop_learns_period() {
        let mut p = LoopPredictor::default();
        // Pattern: 3×L1 then L2, repeated.
        for _ in 0..6 {
            for _ in 0..3 {
                p.update(PC, CacheLevel::L1);
            }
            p.update(PC, CacheLevel::L2);
        }
        // Now mid-run: after the deep access, expect L1 for 3 beats...
        assert_eq!(p.predict(PC, CacheLevel::L1), CacheLevel::L1);
        p.update(PC, CacheLevel::L1);
        p.update(PC, CacheLevel::L1);
        p.update(PC, CacheLevel::L1);
        // ...and the L2 exactly on the 4th.
        assert_eq!(p.predict(PC, CacheLevel::L1), CacheLevel::L2);
    }

    #[test]
    fn loop_without_pattern_stays_reasonable() {
        let mut p = LoopPredictor::default();
        for _ in 0..10 {
            p.update(PC, CacheLevel::L1);
        }
        assert_eq!(p.predict(PC, CacheLevel::L1), CacheLevel::L1);
    }

    #[test]
    fn loop_unstable_period_falls_back_to_deep() {
        let mut p = LoopPredictor::default();
        // Erratic deep accesses: periods 1, 3, 2...
        p.update(PC, CacheLevel::L1);
        p.update(PC, CacheLevel::L3);
        for _ in 0..3 {
            p.update(PC, CacheLevel::L1);
        }
        p.update(PC, CacheLevel::L3);
        p.update(PC, CacheLevel::L1);
        p.update(PC, CacheLevel::L3);
        // No stable period: predicting the deep level keeps accuracy.
        assert_eq!(p.predict(PC, CacheLevel::L1), CacheLevel::L3);
    }

    #[test]
    fn hybrid_switches_to_loop_on_strided_pattern() {
        let mut p = HybridPredictor::default();
        // 7×L1 then one L2 — greedy would always say L2 (imprecise);
        // loop learns the beat and is precise.
        let mut precise = 0;
        let mut total = 0;
        for _ in 0..20 {
            for _ in 0..7 {
                let pred = p.predict(PC, CacheLevel::L1);
                total += 1;
                precise += u32::from(pred == CacheLevel::L1);
                p.update(PC, CacheLevel::L1);
            }
            let pred = p.predict(PC, CacheLevel::L2);
            total += 1;
            precise += u32::from(pred == CacheLevel::L2);
            p.update(PC, CacheLevel::L2);
        }
        let precision = f64::from(precise) / f64::from(total);
        assert!(precision > 0.8, "hybrid precision on strided pattern was {precision}");
    }

    #[test]
    fn hybrid_handles_coarse_phase_pattern() {
        let mut p = HybridPredictor::default();
        // Long L3 phase.
        for _ in 0..20 {
            p.update(PC, CacheLevel::L3);
        }
        assert_eq!(p.predict(PC, CacheLevel::L3), CacheLevel::L3);
        // Then a long L1 phase: greedy window drains and adapts.
        for _ in 0..10 {
            p.update(PC, CacheLevel::L1);
        }
        assert_eq!(p.predict(PC, CacheLevel::L1), CacheLevel::L1);
    }

    #[test]
    fn table_aliasing_resets_entries() {
        let mut p = GreedyPredictor::new(2, 4);
        p.update(0, CacheLevel::L3);
        // pc=2 aliases to the same slot in a 2-entry table and evicts it.
        p.update(2, CacheLevel::L1);
        assert_eq!(p.predict(0, CacheLevel::L1), CacheLevel::L1, "aliased entry was reset");
    }

    #[test]
    fn boxed_trait_object_dispatches() {
        let mut p: Box<dyn LocationPredictor> = Box::new(StaticPredictor::new(CacheLevel::L3));
        assert_eq!(p.predict(PC, CacheLevel::L1), CacheLevel::L3);
        assert_eq!(p.name(), "Static L3");
        p.update(PC, CacheLevel::L1);
    }

    #[test]
    fn pattern_learns_multi_level_sequence() {
        // L2 L2 L3 repeating: loop (single deep level per period) and
        // greedy (always L3) are both imprecise; the pattern predictor
        // tracks the sequence.
        let mut p = PatternPredictor::default();
        let seq = [CacheLevel::L2, CacheLevel::L2, CacheLevel::L3];
        // Train.
        for _ in 0..60 {
            for &l in &seq {
                p.update(PC, l);
            }
        }
        // Measure a full period.
        let mut precise = 0;
        for _ in 0..10 {
            for &l in &seq {
                if p.predict(PC, l) == l {
                    precise += 1;
                }
                p.update(PC, l);
            }
        }
        assert!(precise >= 27, "pattern predictor should be ~precise, got {precise}/30");
    }

    #[test]
    fn pattern_falls_back_to_greedy_when_unconfident() {
        let mut p = PatternPredictor::default();
        // One observation: no PHT confidence yet, fallback covers it.
        p.update(PC, CacheLevel::L3);
        assert_eq!(p.predict(PC, CacheLevel::L1), CacheLevel::L3);
        assert_eq!(p.name(), "Pattern");
    }

    #[test]
    fn hybrid_name() {
        assert_eq!(HybridPredictor::default().name(), "Hybrid");
    }
}
