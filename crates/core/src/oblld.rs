//! The Obl-Ld operation: wait buffer and per-load event state machine
//! (Sections V-B and V-C of the paper).
//!
//! Four events govern an Obl-Ld's life (Section V-C2):
//!
//! * **A** — the load is ready but unsafe (tainted address), so it issues
//!   as an Obl-Ld (constructing an [`OblLdFsm`] is event A);
//! * **B** — all per-level responses have reached the wait buffer
//!   ([`OblEvent::Response`], last one);
//! * **C** — the load becomes safe: its address untaints
//!   ([`OblEvent::Safe`]);
//! * **D** — the validation access completes
//!   ([`OblEvent::ValidationDone`]).
//!
//! `A ≺ B` and `C ≺ D` always hold, giving exactly three orderings:
//! `A≺B≺C≺D`, `A≺C≺B≺D` and `A≺C≺D≺B` — all covered here and by tests.
//! The FSM returns the [`OblAction`]s the pipeline must perform; it holds
//! no references into the pipeline, which keeps the paper's logic (Figure
//! 4) independently testable.

use sdo_mem::CacheLevel;

/// Directives returned by the FSM for the pipeline to execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OblAction {
    /// Write `value` back and wake dependent instructions. Pre-safe this
    /// value is tainted (it may be ⊥ = 0 on a concealed fail).
    Forward {
        /// The word to forward.
        value: u64,
    },
    /// Squash all instructions younger than the load (its own value is
    /// re-produced by the validation).
    Squash,
    /// Send a validation access for the load's address.
    IssueValidation,
    /// Send an exposure access for the load's address.
    IssueExposure,
    /// Train the location predictor with the actual level.
    UpdatePredictor {
        /// The level the data was actually found in.
        level: CacheLevel,
    },
    /// The load is architecturally complete and may retire.
    Complete,
}

/// The wait buffer: receives in-order per-level responses of one Obl-Ld
/// (Section V-B). Levels respond closest-first, so the first `hit`
/// response is the authoritative result (paper footnote 2).
#[derive(Debug, Clone)]
pub struct WaitBuffer {
    expected: usize,
    received: usize,
    first_success: Option<(CacheLevel, u64)>,
}

impl WaitBuffer {
    /// Creates a wait buffer expecting `expected` responses (= predicted
    /// depth).
    ///
    /// # Panics
    ///
    /// Panics if `expected` is 0.
    #[must_use]
    pub fn new(expected: usize) -> Self {
        assert!(expected > 0, "an Obl-Ld probes at least the L1");
        WaitBuffer { expected, received: 0, first_success: None }
    }

    /// Records the next (in-order) response.
    ///
    /// # Panics
    ///
    /// Panics if more than `expected` responses arrive.
    pub fn record(&mut self, level: CacheLevel, hit: bool, value: Option<u64>) {
        assert!(self.received < self.expected, "wait buffer overflow");
        self.received += 1;
        if hit && self.first_success.is_none() {
            let v = value.expect("a hit response carries data");
            self.first_success = Some((level, v));
        }
    }

    /// Whether every expected response has arrived (event **B**).
    #[must_use]
    pub fn complete(&self) -> bool {
        self.received == self.expected
    }

    /// The first (closest-level) success so far, if any. Because
    /// responses arrive in order, a success is final as soon as it is
    /// seen — the basis of the early-forwarding optimization.
    #[must_use]
    pub fn first_success(&self) -> Option<(CacheLevel, u64)> {
        self.first_success
    }

    /// Responses still outstanding.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.expected - self.received
    }
}

/// Events delivered to the FSM by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OblEvent {
    /// A per-level response reached the wait buffer (in order, L1 first).
    Response {
        /// Responding level.
        level: CacheLevel,
        /// Whether the tag check hit.
        hit: bool,
        /// Data word if `hit`.
        value: Option<u64>,
    },
    /// The load's address became untainted (event **C**).
    Safe,
    /// The validation access completed (event **D**).
    ValidationDone {
        /// The up-to-date word read by the validation.
        value: u64,
        /// Whether it matches the value the Obl-Ld forwarded.
        matches: bool,
        /// Level the validation found the data in (trains the predictor
        /// after a fail, Section V-C3).
        level: CacheLevel,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Issued; waiting for responses; unsafe.
    Unsafe,
    /// All responses in, result forwarded; still unsafe (end of case-1 B).
    ForwardedUnsafe,
    /// Safe before B (cases 2/3); validation in flight; awaiting B and/or D.
    SafeAwaiting,
    /// Safe after B with success; validation in flight (case 1, D pending).
    Validating,
    /// Safe after B with fail; squashed; validation re-produces the value.
    Reissuing,
    /// Architecturally complete.
    Done,
}

/// Per-load Obl-Ld state machine implementing Figure 4.
///
/// Construct at issue (event **A**), feed events, execute the returned
/// actions. See the case tests in this module for full walkthroughs of
/// all three orderings.
///
/// # Examples
///
/// Case `A≺B≺C≺D` with a successful L1 hit and exposure:
///
/// ```rust
/// use sdo_core::oblld::{OblAction, OblEvent, OblLdFsm};
/// use sdo_mem::CacheLevel;
///
/// let mut fsm = OblLdFsm::new(0x40, CacheLevel::L1, false, true);
/// let acts = fsm.on_event(OblEvent::Response {
///     level: CacheLevel::L1, hit: true, value: Some(7),
/// });
/// assert_eq!(acts, vec![OblAction::Forward { value: 7 }]); // B: forward (tainted)
/// let acts = fsm.on_event(OblEvent::Safe); // C: success + L1 hit ⇒ expose
/// assert!(acts.contains(&OblAction::IssueExposure));
/// assert!(acts.contains(&OblAction::Complete));
/// ```
#[derive(Debug, Clone)]
pub struct OblLdFsm {
    pc: u64,
    predicted: CacheLevel,
    exposure_eligible: bool,
    early_forward: bool,
    wait: WaitBuffer,
    phase: Phase,
    l1_hit: Option<bool>,
    forwarded_value: Option<u64>,
    squashed: bool,
    issued_exposure: bool,
}

impl OblLdFsm {
    /// Event **A**: the tainted load issues as an Obl-Ld.
    ///
    /// * `predicted` — the location predictor's output (must be a cache
    ///   level; a DRAM prediction never issues an Obl-Ld).
    /// * `exposure_eligible` — the InvisiSpec exposure condition held at
    ///   issue.
    /// * `early_forward` — enable the early-forwarding optimization
    ///   (Section V-C2; toggled off for the ablation bench).
    ///
    /// # Panics
    ///
    /// Panics if `predicted` is [`CacheLevel::Dram`].
    #[must_use]
    pub fn new(pc: u64, predicted: CacheLevel, exposure_eligible: bool, early_forward: bool) -> Self {
        assert!(predicted.is_cache(), "DRAM predictions revert to delayed execution");
        OblLdFsm {
            pc,
            predicted,
            exposure_eligible,
            early_forward,
            wait: WaitBuffer::new(predicted.depth() as usize),
            phase: Phase::Unsafe,
            l1_hit: None,
            forwarded_value: None,
            squashed: false,
            issued_exposure: false,
        }
    }

    /// The load's PC (the predictor's public input).
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The predicted level.
    #[must_use]
    pub fn predicted(&self) -> CacheLevel {
        self.predicted
    }

    /// Whether the load has architecturally completed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Whether younger instructions were squashed by this load.
    #[must_use]
    pub fn squashed(&self) -> bool {
        self.squashed
    }

    /// The value forwarded to dependents so far (for validation compare).
    #[must_use]
    pub fn forwarded_value(&self) -> Option<u64> {
        self.forwarded_value
    }

    /// Whether this load still needs a validation result to finish.
    #[must_use]
    pub fn awaiting_validation(&self) -> bool {
        matches!(self.phase, Phase::SafeAwaiting | Phase::Validating | Phase::Reissuing)
    }

    fn validation_kind(&self) -> OblAction {
        // Section VI-A field (3): expose iff exposure-eligible at issue or
        // the L1 lookup succeeded.
        if self.exposure_eligible || self.l1_hit == Some(true) {
            OblAction::IssueExposure
        } else {
            OblAction::IssueValidation
        }
    }

    /// Delivers an event; returns the actions the pipeline must execute,
    /// in order.
    ///
    /// # Panics
    ///
    /// Panics on protocol violations (e.g. responses after completion
    /// of the wait buffer, `Safe` twice) — these indicate pipeline bugs.
    pub fn on_event(&mut self, event: OblEvent) -> Vec<OblAction> {
        match event {
            OblEvent::Response { level, hit, value } => self.on_response(level, hit, value),
            OblEvent::Safe => self.on_safe(),
            OblEvent::ValidationDone { value, matches, level } => {
                self.on_validation(value, matches, level)
            }
        }
    }

    fn on_response(&mut self, level: CacheLevel, hit: bool, value: Option<u64>) -> Vec<OblAction> {
        if self.phase == Phase::Done {
            // Case 3: the validation completed the load; B is ignored.
            return Vec::new();
        }
        self.wait.record(level, hit, value);
        if level == CacheLevel::L1 {
            self.l1_hit = Some(hit);
        }
        let mut actions = Vec::new();

        match self.phase {
            Phase::Unsafe => {
                // Pre-C: forwarding must wait for *all* responses so that
                // timing does not reveal which level hit.
                if self.wait.complete() {
                    let value = self.wait.first_success().map_or(0, |(_, v)| v);
                    self.forwarded_value = Some(value);
                    actions.push(OblAction::Forward { value });
                    self.phase = Phase::ForwardedUnsafe;
                }
            }
            Phase::SafeAwaiting => {
                // Post-C (case 2): success/fail is safe to reveal.
                let early = self.early_forward && self.wait.first_success().is_some();
                if early || self.wait.complete() {
                    match self.wait.first_success() {
                        Some((lvl, v)) => {
                            if self.forwarded_value.is_none() {
                                self.forwarded_value = Some(v);
                                actions.push(OblAction::Forward { value: v });
                                actions.push(OblAction::UpdatePredictor { level: lvl });
                            }
                            if self.issued_exposure {
                                // Exposure does not gate retirement: a
                                // revealed success completes the load now.
                                actions.push(OblAction::Complete);
                                self.phase = Phase::Done;
                            }
                            // Otherwise stay in SafeAwaiting for D.
                        }
                        None if self.wait.complete()
                            // Fail revealed without having forwarded: drop
                            // the result; the value must come from a
                            // validation. If only an exposure was sent at
                            // C, convert to a validation now. No squash.
                            && self.issued_exposure => {
                                self.issued_exposure = false;
                                actions.push(OblAction::IssueValidation);
                            }
                        None => {}
                    }
                }
            }
            Phase::ForwardedUnsafe | Phase::Validating | Phase::Reissuing | Phase::Done => {
                // ForwardedUnsafe cannot receive responses (B passed), and
                // post-B phases receive none either.
                unreachable!("response in phase {:?}", self.phase);
            }
        }
        actions
    }

    fn on_safe(&mut self) -> Vec<OblAction> {
        let mut actions = Vec::new();
        match self.phase {
            Phase::Unsafe => {
                // Cases 2/3: C before B. Issue the consistency access now.
                let kind = self.validation_kind();
                self.issued_exposure = kind == OblAction::IssueExposure;
                actions.push(kind);
                self.phase = Phase::SafeAwaiting;
                // Early forwarding: a success may already be sitting in
                // the wait buffer.
                if self.early_forward {
                    if let Some((lvl, v)) = self.wait.first_success() {
                        self.forwarded_value = Some(v);
                        actions.push(OblAction::Forward { value: v });
                        actions.push(OblAction::UpdatePredictor { level: lvl });
                    }
                }
            }
            Phase::ForwardedUnsafe => {
                // Case 1: C after B.
                match self.wait.first_success() {
                    Some((lvl, _)) => {
                        actions.push(OblAction::UpdatePredictor { level: lvl });
                        let kind = self.validation_kind();
                        actions.push(kind);
                        if kind == OblAction::IssueExposure {
                            // Exposure does not delay retirement.
                            actions.push(OblAction::Complete);
                            self.phase = Phase::Done;
                        } else {
                            self.phase = Phase::Validating;
                        }
                    }
                    None => {
                        // Fail was concealed and garbage was forwarded:
                        // the only squash-producing path (Section V-C2).
                        self.squashed = true;
                        actions.push(OblAction::Squash);
                        actions.push(OblAction::IssueValidation);
                        self.phase = Phase::Reissuing;
                    }
                }
            }
            _ => unreachable!("Safe delivered twice (phase {:?})", self.phase),
        }
        actions
    }

    fn on_validation(&mut self, value: u64, matches: bool, level: CacheLevel) -> Vec<OblAction> {
        let mut actions = Vec::new();
        // The authoritative comparison is against what was actually
        // forwarded (validation may have been issued before an early
        // forward); `matches` reflects the memory system's view and is
        // kept for statistics.
        let _ = matches;
        match self.phase {
            Phase::Validating => {
                // Case 1/2 success path: compare.
                if Some(value) == self.forwarded_value {
                    actions.push(OblAction::Complete);
                } else {
                    // Possible consistency violation: squash younger,
                    // forward the fresh value.
                    self.squashed = true;
                    actions.push(OblAction::Squash);
                    actions.push(OblAction::Forward { value });
                    actions.push(OblAction::Complete);
                }
                self.phase = Phase::Done;
            }
            Phase::Reissuing => {
                // Case 1 fail: younger already squashed at C; the
                // validation is the re-issued load.
                actions.push(OblAction::Forward { value });
                actions.push(OblAction::UpdatePredictor { level });
                actions.push(OblAction::Complete);
                self.phase = Phase::Done;
            }
            Phase::SafeAwaiting => {
                if let Some(fwd) = self.forwarded_value {
                    // Case 2 with (early-)forwarded success: D compares.
                    if value == fwd {
                        actions.push(OblAction::Complete);
                    } else {
                        self.squashed = true;
                        actions.push(OblAction::Squash);
                        actions.push(OblAction::Forward { value });
                        actions.push(OblAction::Complete);
                    }
                } else {
                    // Case 3 (D before B), or case 2 fail: the validation
                    // result completes the load directly — a "guaranteed
                    // success".
                    self.forwarded_value = Some(value);
                    actions.push(OblAction::Forward { value });
                    actions.push(OblAction::UpdatePredictor { level });
                    actions.push(OblAction::Complete);
                }
                self.phase = Phase::Done;
            }
            _ => unreachable!("validation completed in phase {:?}", self.phase),
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(level: CacheLevel, hit: bool, value: u64) -> OblEvent {
        OblEvent::Response { level, hit, value: hit.then_some(value) }
    }

    // ------------------------------------------------------------------
    // Wait buffer
    // ------------------------------------------------------------------

    #[test]
    fn wait_buffer_completes_after_expected() {
        let mut wb = WaitBuffer::new(2);
        assert_eq!(wb.outstanding(), 2);
        wb.record(CacheLevel::L1, false, None);
        assert!(!wb.complete());
        wb.record(CacheLevel::L2, true, Some(9));
        assert!(wb.complete());
        assert_eq!(wb.first_success(), Some((CacheLevel::L2, 9)));
    }

    #[test]
    fn wait_buffer_keeps_first_success() {
        let mut wb = WaitBuffer::new(3);
        wb.record(CacheLevel::L1, true, Some(1));
        wb.record(CacheLevel::L2, true, Some(2));
        wb.record(CacheLevel::L3, true, Some(3));
        assert_eq!(wb.first_success(), Some((CacheLevel::L1, 1)), "closest level wins");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn wait_buffer_overflow_panics() {
        let mut wb = WaitBuffer::new(1);
        wb.record(CacheLevel::L1, false, None);
        wb.record(CacheLevel::L2, false, None);
    }

    #[test]
    #[should_panic(expected = "at least the L1")]
    fn wait_buffer_zero_panics() {
        let _ = WaitBuffer::new(0);
    }

    // ------------------------------------------------------------------
    // Case 1: A ≺ B ≺ C ≺ D
    // ------------------------------------------------------------------

    #[test]
    fn case1_success_with_validation() {
        // Predicted L2, hit in L2 (not L1 ⇒ validation, not exposure).
        let mut fsm = OblLdFsm::new(0, CacheLevel::L2, false, true);
        assert!(fsm.on_event(resp(CacheLevel::L1, false, 0)).is_empty());
        let b = fsm.on_event(resp(CacheLevel::L2, true, 42));
        assert_eq!(b, vec![OblAction::Forward { value: 42 }], "B: forward tainted result");
        let c = fsm.on_event(OblEvent::Safe);
        assert_eq!(
            c,
            vec![
                OblAction::UpdatePredictor { level: CacheLevel::L2 },
                OblAction::IssueValidation
            ]
        );
        assert!(fsm.awaiting_validation());
        let d = fsm.on_event(OblEvent::ValidationDone { value: 42, matches: true, level: CacheLevel::L2 });
        assert_eq!(d, vec![OblAction::Complete]);
        assert!(fsm.is_done());
        assert!(!fsm.squashed());
    }

    #[test]
    fn case1_success_from_l1_uses_exposure() {
        let mut fsm = OblLdFsm::new(0, CacheLevel::L1, false, true);
        let b = fsm.on_event(resp(CacheLevel::L1, true, 5));
        assert_eq!(b, vec![OblAction::Forward { value: 5 }]);
        let c = fsm.on_event(OblEvent::Safe);
        assert_eq!(
            c,
            vec![
                OblAction::UpdatePredictor { level: CacheLevel::L1 },
                OblAction::IssueExposure,
                OblAction::Complete
            ],
            "L1 hit ⇒ exposure, retirement not delayed"
        );
        assert!(fsm.is_done());
    }

    #[test]
    fn case1_exposure_eligible_at_issue() {
        // Hit deeper than L1, but the InvisiSpec condition held at issue.
        let mut fsm = OblLdFsm::new(0, CacheLevel::L2, true, true);
        fsm.on_event(resp(CacheLevel::L1, false, 0));
        fsm.on_event(resp(CacheLevel::L2, true, 8));
        let c = fsm.on_event(OblEvent::Safe);
        assert!(c.contains(&OblAction::IssueExposure));
        assert!(c.contains(&OblAction::Complete));
    }

    #[test]
    fn case1_fail_squashes_at_safe() {
        // The ONLY squash-producing ordering (Section V-C2).
        let mut fsm = OblLdFsm::new(0, CacheLevel::L2, false, true);
        fsm.on_event(resp(CacheLevel::L1, false, 0));
        let b = fsm.on_event(resp(CacheLevel::L2, false, 0));
        assert_eq!(b, vec![OblAction::Forward { value: 0 }], "fail concealed: forward ⊥");
        let c = fsm.on_event(OblEvent::Safe);
        assert_eq!(c, vec![OblAction::Squash, OblAction::IssueValidation]);
        assert!(fsm.squashed());
        let d = fsm.on_event(OblEvent::ValidationDone { value: 77, matches: false, level: CacheLevel::Dram });
        assert_eq!(
            d,
            vec![
                OblAction::Forward { value: 77 },
                OblAction::UpdatePredictor { level: CacheLevel::Dram },
                OblAction::Complete
            ],
            "validation re-produces the value and trains the predictor"
        );
        assert!(fsm.is_done());
    }

    #[test]
    fn case1_validation_mismatch_is_consistency_squash() {
        let mut fsm = OblLdFsm::new(0, CacheLevel::L2, false, true);
        fsm.on_event(resp(CacheLevel::L1, false, 0));
        fsm.on_event(resp(CacheLevel::L2, true, 10));
        fsm.on_event(OblEvent::Safe);
        let d = fsm.on_event(OblEvent::ValidationDone { value: 11, matches: false, level: CacheLevel::L1 });
        assert_eq!(
            d,
            vec![OblAction::Squash, OblAction::Forward { value: 11 }, OblAction::Complete]
        );
        assert!(fsm.squashed());
    }

    // ------------------------------------------------------------------
    // Case 2: A ≺ C ≺ B ≺ D
    // ------------------------------------------------------------------

    #[test]
    fn case2_success_forwards_at_b() {
        let mut fsm = OblLdFsm::new(0, CacheLevel::L2, false, false); // no early fwd
        let c = fsm.on_event(OblEvent::Safe);
        assert_eq!(c, vec![OblAction::IssueValidation], "C before B issues validation now");
        assert!(fsm.on_event(resp(CacheLevel::L1, false, 0)).is_empty());
        let b = fsm.on_event(resp(CacheLevel::L2, true, 21));
        assert_eq!(
            b,
            vec![
                OblAction::Forward { value: 21 },
                OblAction::UpdatePredictor { level: CacheLevel::L2 }
            ]
        );
        let d = fsm.on_event(OblEvent::ValidationDone { value: 21, matches: true, level: CacheLevel::L2 });
        assert_eq!(d, vec![OblAction::Complete]);
        assert!(!fsm.squashed());
    }

    #[test]
    fn case2_early_forward_on_first_success() {
        let mut fsm = OblLdFsm::new(0, CacheLevel::L3, false, true);
        fsm.on_event(OblEvent::Safe);
        // L1 hit arrives: with early forwarding the value goes out NOW,
        // before L2/L3 responses.
        let r1 = fsm.on_event(resp(CacheLevel::L1, true, 3));
        assert_eq!(
            r1,
            vec![
                OblAction::Forward { value: 3 },
                OblAction::UpdatePredictor { level: CacheLevel::L1 }
            ]
        );
        // Remaining responses produce nothing new.
        assert!(fsm.on_event(resp(CacheLevel::L2, true, 3)).is_empty());
        assert!(fsm.on_event(resp(CacheLevel::L3, true, 3)).is_empty());
        let d = fsm.on_event(OblEvent::ValidationDone { value: 3, matches: true, level: CacheLevel::L1 });
        assert_eq!(d, vec![OblAction::Complete]);
    }

    #[test]
    fn case2_fail_drops_without_squash() {
        let mut fsm = OblLdFsm::new(0, CacheLevel::L1, false, true);
        fsm.on_event(OblEvent::Safe);
        let b = fsm.on_event(resp(CacheLevel::L1, false, 0));
        assert!(b.is_empty(), "fail is safe to reveal: drop, no forward, no squash");
        assert!(!fsm.squashed());
        let d = fsm.on_event(OblEvent::ValidationDone { value: 9, matches: false, level: CacheLevel::L3 });
        assert_eq!(
            d,
            vec![
                OblAction::Forward { value: 9 },
                OblAction::UpdatePredictor { level: CacheLevel::L3 },
                OblAction::Complete
            ]
        );
        assert!(!fsm.squashed(), "case 2 fail never squashes");
    }

    #[test]
    fn case2_race_store_between_forward_and_validation() {
        let mut fsm = OblLdFsm::new(0, CacheLevel::L1, false, true);
        fsm.on_event(OblEvent::Safe);
        fsm.on_event(resp(CacheLevel::L1, true, 5));
        // Another core changed the value before validation.
        let d = fsm.on_event(OblEvent::ValidationDone { value: 6, matches: false, level: CacheLevel::L1 });
        assert_eq!(
            d,
            vec![OblAction::Squash, OblAction::Forward { value: 6 }, OblAction::Complete]
        );
    }

    // ------------------------------------------------------------------
    // Case 3: A ≺ C ≺ D ≺ B
    // ------------------------------------------------------------------

    #[test]
    fn case3_validation_completes_load_first() {
        let mut fsm = OblLdFsm::new(0, CacheLevel::L3, false, false);
        let c = fsm.on_event(OblEvent::Safe);
        assert_eq!(c, vec![OblAction::IssueValidation]);
        // D arrives before any/all responses.
        let d = fsm.on_event(OblEvent::ValidationDone { value: 30, matches: true, level: CacheLevel::L2 });
        assert_eq!(
            d,
            vec![
                OblAction::Forward { value: 30 },
                OblAction::UpdatePredictor { level: CacheLevel::L2 },
                OblAction::Complete
            ],
            "validation result is a guaranteed success"
        );
        assert!(fsm.is_done());
        // Late Obl-Ld responses are ignored.
        assert!(fsm.on_event(resp(CacheLevel::L1, true, 30)).is_empty());
        assert!(fsm.on_event(resp(CacheLevel::L2, true, 30)).is_empty());
        assert!(fsm.on_event(resp(CacheLevel::L3, true, 30)).is_empty());
    }

    // ------------------------------------------------------------------
    // Construction and accessors
    // ------------------------------------------------------------------

    #[test]
    #[should_panic(expected = "DRAM predictions")]
    fn dram_prediction_rejected() {
        let _ = OblLdFsm::new(0, CacheLevel::Dram, false, true);
    }

    #[test]
    fn accessors_report_state() {
        let fsm = OblLdFsm::new(0x77, CacheLevel::L2, false, true);
        assert_eq!(fsm.pc(), 0x77);
        assert_eq!(fsm.predicted(), CacheLevel::L2);
        assert!(!fsm.is_done());
        assert_eq!(fsm.forwarded_value(), None);
        assert!(!fsm.awaiting_validation());
    }

    #[test]
    fn prediction_depth_sets_expected_responses() {
        let mut fsm = OblLdFsm::new(0, CacheLevel::L3, false, true);
        // Three responses required before the unsafe forward.
        assert!(fsm.on_event(resp(CacheLevel::L1, false, 0)).is_empty());
        assert!(fsm.on_event(resp(CacheLevel::L2, false, 0)).is_empty());
        let b = fsm.on_event(resp(CacheLevel::L3, true, 1));
        assert_eq!(b, vec![OblAction::Forward { value: 1 }]);
    }

    #[test]
    fn no_early_forward_when_disabled() {
        let mut fsm = OblLdFsm::new(0, CacheLevel::L2, false, false);
        fsm.on_event(OblEvent::Safe);
        let r1 = fsm.on_event(resp(CacheLevel::L1, true, 4));
        assert!(r1.is_empty(), "ablation: wait for all responses even when safe");
        let b = fsm.on_event(resp(CacheLevel::L2, false, 0));
        assert_eq!(
            b,
            vec![
                OblAction::Forward { value: 4 },
                OblAction::UpdatePredictor { level: CacheLevel::L1 }
            ]
        );
    }
}
