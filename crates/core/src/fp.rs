//! The floating-point SDO operation (Section I-A of the paper).
//!
//! FP multiply/divide/sqrt have operand-dependent latency on real
//! hardware: subnormal operands take a slow (often microcoded) path. That
//! latency difference is a covert channel, so `STT{ld+fp}` delays tainted
//! FP transmit ops. The SDO alternative: one DO variant covering the
//! *fast* class (normal operands), and a static predictor that always
//! predicts "normal". A subnormal input makes the variant `fail`; the
//! squash happens when the operands untaint, exactly like a failed Obl-Ld.

use crate::framework::DoResult;
use sdo_isa::FpuOp;

/// Execution equivalence class of an FP operation's inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpClass {
    /// All operands normal (or zero/inf/NaN): the fast hardware path.
    Normal,
    /// Some operand subnormal: the slow path (no DO variant; must squash
    /// and re-execute once safe).
    Subnormal,
}

/// Classifies the inputs of an FP transmit op.
///
/// Only `is_subnormal` operands select the slow path in this model
/// (zero, infinities and NaNs take the fast path, as on most hardware).
///
/// ```rust
/// use sdo_core::fp::{classify, FpClass};
/// assert_eq!(classify(1.0, 2.0), FpClass::Normal);
/// assert_eq!(classify(f64::MIN_POSITIVE / 4.0, 2.0), FpClass::Subnormal);
/// assert_eq!(classify(0.0, f64::INFINITY), FpClass::Normal);
/// ```
#[must_use]
pub fn classify(a: f64, b: f64) -> FpClass {
    if a.is_subnormal() || b.is_subnormal() {
        FpClass::Subnormal
    } else {
        FpClass::Normal
    }
}

/// Executes the single DO variant of an FP transmit op (the fast, normal-
/// operand class).
///
/// Returns [`DoResult::success`] with the computed value when both inputs
/// are in the fast class, [`DoResult::fail`] otherwise — the pipeline
/// forwards the (tainted) result either way and squashes at the untaint
/// point on fail, per Figure 2.
///
/// For [`FpuOp::Sqrt`] only `a` is an input (`b` is ignored for
/// classification).
///
/// ```rust
/// use sdo_core::fp::fp_do_execute;
/// use sdo_isa::FpuOp;
/// let r = fp_do_execute(FpuOp::Mul, 3.0, 4.0);
/// assert_eq!(r.presult, Some(12.0));
/// let r = fp_do_execute(FpuOp::Mul, f64::MIN_POSITIVE / 2.0, 4.0);
/// assert!(!r.success);
/// ```
#[must_use]
pub fn fp_do_execute(op: FpuOp, a: f64, b: f64) -> DoResult<f64> {
    let class = if op == FpuOp::Sqrt { classify(a, 1.0) } else { classify(a, b) };
    match class {
        FpClass::Normal => DoResult::success(op.eval(a, b)),
        FpClass::Subnormal => DoResult::fail(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUB: f64 = f64::MIN_POSITIVE / 8.0;

    #[test]
    fn classify_normals_and_specials() {
        assert_eq!(classify(1.5, -2.5), FpClass::Normal);
        assert_eq!(classify(0.0, 0.0), FpClass::Normal);
        assert_eq!(classify(f64::INFINITY, f64::NAN), FpClass::Normal);
        assert_eq!(classify(f64::MAX, f64::MIN_POSITIVE), FpClass::Normal);
    }

    #[test]
    fn classify_subnormals() {
        assert!(SUB.is_subnormal());
        assert_eq!(classify(SUB, 1.0), FpClass::Subnormal);
        assert_eq!(classify(1.0, SUB), FpClass::Subnormal);
        assert_eq!(classify(SUB, SUB), FpClass::Subnormal);
    }

    #[test]
    fn fast_variant_computes_all_ops() {
        assert_eq!(fp_do_execute(FpuOp::Mul, 6.0, 7.0).presult, Some(42.0));
        assert_eq!(fp_do_execute(FpuOp::Div, 1.0, 4.0).presult, Some(0.25));
        assert_eq!(fp_do_execute(FpuOp::Sqrt, 64.0, 0.0).presult, Some(8.0));
    }

    #[test]
    fn subnormal_input_fails() {
        let r = fp_do_execute(FpuOp::Div, SUB, 2.0);
        assert_eq!(r, DoResult::fail());
        let r = fp_do_execute(FpuOp::Mul, 2.0, SUB);
        assert!(!r.success);
    }

    #[test]
    fn sqrt_ignores_second_operand_class() {
        // b is subnormal but sqrt has a single input: still fast.
        let r = fp_do_execute(FpuOp::Sqrt, 9.0, SUB);
        assert_eq!(r.presult, Some(3.0));
    }

    #[test]
    fn functional_correctness_on_success_matches_reference() {
        // Definition 1: success ⇒ presult == f(args).
        for (a, b) in [(1.0, 2.0), (-3.5, 0.25), (1e300, 1e-300), (0.0, 5.0)] {
            for op in [FpuOp::Mul, FpuOp::Div] {
                let r = fp_do_execute(op, a, b);
                if r.success {
                    assert_eq!(r.presult.unwrap().to_bits(), op.eval(a, b).to_bits());
                }
            }
        }
    }
}
