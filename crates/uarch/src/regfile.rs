//! Physical register file, register alias tables and free lists — plus
//! the per-register *youngest root of taint* (YRoT) that implements STT's
//! taint tracking.
//!
//! ## YRoT taint tracking
//!
//! Following the STT formal report, each physical register carries the
//! sequence number of the *youngest* speculative access instruction (load)
//! its value transitively depends on. Because visibility points are
//! monotone in program order for both attack models (if a younger load has
//! reached its visibility point, every older one has too), a register is
//! tainted **iff** its YRoT load has not yet reached its visibility point.
//! This gives O(1) taint checks and single-cycle "untaint" for free: when
//! the frontier advances past a load, everything rooted at it untaints
//! simultaneously.

use sdo_isa::{FReg, Reg, NUM_FREGS, NUM_REGS};

/// Register class of a physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// 64-bit integer.
    Int,
    /// IEEE-754 binary64 (stored as bits).
    Fp,
}

/// A physical register name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysReg {
    /// Register class.
    pub class: RegClass,
    /// Index within the class's file.
    pub idx: u16,
}

/// A whole-RAT copy (diagnostics and differential tests; the pipeline
/// itself recovers from squashes by walking renames back via
/// [`RegFile::unrename`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatSnapshot {
    int: [u16; NUM_REGS],
    fp: [u16; NUM_FREGS],
}

/// An issue-queue entry waiting on a register: the waiting instruction's
/// ROB `(slot, seq)` handle. The seq makes stale registrations (from
/// squashed instructions) self-invalidating — the core drops any waiter
/// whose seq no longer matches the slot's occupant.
pub(crate) type Waiter = (u32, u64);

#[derive(Debug, Clone)]
struct Bank {
    val: Vec<u64>,
    /// Readiness, one bit per physical register (bit i of word i/64).
    /// Packed so the dispatch-time readiness probe touches one cache
    /// line for the whole file.
    ready: Vec<u64>,
    yrot: Vec<Option<u64>>,
    /// Wakeup lists: issue-queue entries blocked on this register.
    /// Drained on write; cleared on (re)allocation. The inner vectors
    /// keep their capacity across reuse, so steady state never
    /// allocates.
    waiters: Vec<Vec<Waiter>>,
    free: Vec<u16>,
    rat: [u16; NUM_REGS],
}

fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1u64 << (i % 64)) != 0
}

fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

fn bit_clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

impl Bank {
    fn new(phys: usize) -> Self {
        assert!(phys >= 2 * NUM_REGS, "need at least {} physical registers", 2 * NUM_REGS);
        let mut rat = [0u16; NUM_REGS];
        for (i, r) in rat.iter_mut().enumerate() {
            *r = i as u16;
        }
        Bank {
            val: vec![0; phys],
            ready: {
                let mut v = vec![0u64; phys.div_ceil(64)];
                for i in 0..NUM_REGS {
                    bit_set(&mut v, i);
                }
                v
            },
            yrot: vec![None; phys],
            waiters: vec![Vec::new(); phys],
            free: (NUM_REGS as u16..phys as u16).rev().collect(),
            rat,
        }
    }
}

/// The rename + physical-register state for one core.
#[derive(Debug, Clone)]
pub struct RegFile {
    int: Bank,
    fp: Bank,
}

impl RegFile {
    /// Creates a file with the given physical register counts.
    ///
    /// Architectural registers initially map to physical 0..32 per class,
    /// all ready with value 0 and no taint.
    ///
    /// # Panics
    ///
    /// Panics if either count is below 64 (32 architectural + headroom).
    #[must_use]
    pub fn new(phys_int: usize, phys_fp: usize) -> Self {
        RegFile { int: Bank::new(phys_int), fp: Bank::new(phys_fp) }
    }

    fn bank(&self, class: RegClass) -> &Bank {
        match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }

    fn bank_mut(&mut self, class: RegClass) -> &mut Bank {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }

    /// Current physical mapping of an architectural integer register.
    #[must_use]
    pub fn lookup_int(&self, r: Reg) -> PhysReg {
        PhysReg { class: RegClass::Int, idx: self.int.rat[r.index()] }
    }

    /// Current physical mapping of an architectural FP register.
    #[must_use]
    pub fn lookup_fp(&self, r: FReg) -> PhysReg {
        PhysReg { class: RegClass::Fp, idx: self.fp.rat[r.index()] }
    }

    /// Renames a destination: allocates a fresh physical register, updates
    /// the RAT, and returns `(new, previous)` — the previous mapping is
    /// freed when the instruction commits. Returns `None` when the free
    /// list is empty (dispatch must stall).
    pub fn alloc(&mut self, class: RegClass, arch: usize) -> Option<(PhysReg, PhysReg)> {
        let bank = self.bank_mut(class);
        let idx = bank.free.pop()?;
        let old = bank.rat[arch];
        bank.rat[arch] = idx;
        bit_clear(&mut bank.ready, idx as usize);
        bank.yrot[idx as usize] = None;
        bank.waiters[idx as usize].clear();
        Some((PhysReg { class, idx }, PhysReg { class, idx: old }))
    }

    /// Rewinds one rename (squash recovery): points `arch` in `class`'s
    /// RAT back at `old`, the mapping [`RegFile::alloc`] displaced.
    pub fn unrename(&mut self, class: RegClass, arch: usize, old: PhysReg) {
        debug_assert_eq!(old.class, class);
        self.bank_mut(class).rat[arch] = old.idx;
    }

    /// Returns a physical register to the free list.
    pub fn release(&mut self, p: PhysReg) {
        let bank = self.bank_mut(p.class);
        debug_assert!(!bank.free.contains(&p.idx), "double free of {p:?}");
        bank.free.push(p.idx);
    }

    /// Free physical registers remaining in a class.
    #[must_use]
    pub fn free_count(&self, class: RegClass) -> usize {
        self.bank(class).free.len()
    }

    /// Whether the register's value has been produced.
    #[must_use]
    pub fn is_ready(&self, p: PhysReg) -> bool {
        bit_get(&self.bank(p.class).ready, p.idx as usize)
    }

    /// Registers an issue-queue entry (by ROB `(slot, seq)` handle) to be
    /// woken when this register's value is produced.
    pub(crate) fn add_waiter(&mut self, p: PhysReg, slot: u32, seq: u64) {
        self.bank_mut(p.class).waiters[p.idx as usize].push((slot, seq));
    }

    /// Moves this register's pending waiters into `out` (leaving the
    /// internal list empty but with its capacity intact).
    pub(crate) fn drain_waiters_into(&mut self, p: PhysReg, out: &mut Vec<Waiter>) {
        out.append(&mut self.bank_mut(p.class).waiters[p.idx as usize]);
    }

    /// The register's value.
    ///
    /// Reading a not-ready register returns the stale value; callers must
    /// gate on [`RegFile::is_ready`].
    #[must_use]
    pub fn value(&self, p: PhysReg) -> u64 {
        self.bank(p.class).val[p.idx as usize]
    }

    /// The register's YRoT: sequence number of the youngest speculative
    /// load its value depends on, if any.
    #[must_use]
    pub fn yrot(&self, p: PhysReg) -> Option<u64> {
        self.bank(p.class).yrot[p.idx as usize]
    }

    /// Sets the YRoT at rename time (before the value is produced).
    pub fn set_yrot(&mut self, p: PhysReg, yrot: Option<u64>) {
        self.bank_mut(p.class).yrot[p.idx as usize] = yrot;
    }

    /// Produces the register's value (writeback). Dependent issue-queue
    /// entries are woken by the core via `RegFile::drain_waiters_into`.
    pub fn write(&mut self, p: PhysReg, value: u64) {
        let bank = self.bank_mut(p.class);
        bank.val[p.idx as usize] = value;
        bit_set(&mut bank.ready, p.idx as usize);
    }

    /// Marks a register not-ready again (a squashed producer will
    /// re-execute; used when re-issuing a load after a failed Obl-Ld).
    /// Only ever applied to a register whose in-queue consumers have all
    /// been squashed, so no wakeup list needs to be rebuilt.
    pub fn unwrite(&mut self, p: PhysReg) {
        bit_clear(&mut self.bank_mut(p.class).ready, p.idx as usize);
    }

    /// Snapshot of both RATs (taken at every rename for squash recovery).
    #[must_use]
    pub fn snapshot(&self) -> RatSnapshot {
        RatSnapshot { int: self.int.rat, fp: self.fp.rat }
    }

    /// Restores both RATs from a snapshot.
    pub fn restore(&mut self, snap: &RatSnapshot) {
        self.int.rat = snap.int;
        self.fp.rat = snap.fp;
    }

    /// Reads the committed architectural integer state (for differential
    /// testing against the golden model).
    #[must_use]
    pub fn arch_int(&self) -> [u64; NUM_REGS] {
        let mut out = [0u64; NUM_REGS];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.int.val[self.int.rat[i] as usize];
        }
        out
    }

    /// Reads the committed architectural FP state (bit patterns).
    #[must_use]
    pub fn arch_fp(&self) -> [u64; NUM_FREGS] {
        let mut out = [0u64; NUM_FREGS];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.fp.val[self.fp.rat[i] as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_mapping_is_identity_and_ready() {
        let rf = RegFile::new(64, 64);
        let p = rf.lookup_int(Reg::new(5));
        assert_eq!(p.idx, 5);
        assert!(rf.is_ready(p));
        assert_eq!(rf.value(p), 0);
        assert_eq!(rf.yrot(p), None);
        assert_eq!(rf.free_count(RegClass::Int), 32);
    }

    #[test]
    fn alloc_renames_and_write_readies() {
        let mut rf = RegFile::new(64, 64);
        let (new, old) = rf.alloc(RegClass::Int, 3).unwrap();
        assert_eq!(old.idx, 3);
        assert_eq!(rf.lookup_int(Reg::new(3)), new);
        assert!(!rf.is_ready(new));
        rf.write(new, 77);
        assert!(rf.is_ready(new));
        assert_eq!(rf.value(new), 77);
    }

    #[test]
    fn free_list_exhaustion_returns_none() {
        let mut rf = RegFile::new(64, 64);
        for _ in 0..32 {
            assert!(rf.alloc(RegClass::Int, 1).is_some());
        }
        assert!(rf.alloc(RegClass::Int, 1).is_none());
        assert_eq!(rf.free_count(RegClass::Int), 0);
    }

    #[test]
    fn release_recycles() {
        let mut rf = RegFile::new(64, 64);
        let (new, old) = rf.alloc(RegClass::Int, 2).unwrap();
        rf.release(old);
        assert_eq!(rf.free_count(RegClass::Int), 32);
        let _ = new;
    }

    #[test]
    fn unrename_rewinds_a_chain_of_allocs_oldest_last() {
        let mut rf = RegFile::new(80, 80);
        let before = rf.snapshot();
        // Two renames of the same arch reg; undo youngest-first.
        let (_n1, o1) = rf.alloc(RegClass::Int, 3).unwrap();
        let (_n2, o2) = rf.alloc(RegClass::Int, 3).unwrap();
        rf.unrename(RegClass::Int, 3, o2);
        rf.unrename(RegClass::Int, 3, o1);
        assert_eq!(rf.snapshot(), before);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut rf = RegFile::new(64, 64);
        let before = rf.snapshot();
        let (_, _) = rf.alloc(RegClass::Int, 7).unwrap();
        let (_, _) = rf.alloc(RegClass::Fp, 3).unwrap();
        assert_ne!(rf.lookup_int(Reg::new(7)).idx, 7);
        rf.restore(&before);
        assert_eq!(rf.lookup_int(Reg::new(7)).idx, 7);
        assert_eq!(rf.lookup_fp(FReg::new(3)).idx, 3);
    }

    #[test]
    fn yrot_set_and_cleared_on_alloc() {
        let mut rf = RegFile::new(64, 64);
        let (p, _) = rf.alloc(RegClass::Int, 1).unwrap();
        rf.set_yrot(p, Some(42));
        assert_eq!(rf.yrot(p), Some(42));
        // A new allocation of the same slot must not inherit taint.
        rf.release(p);
        let (p2, _) = rf.alloc(RegClass::Int, 2).unwrap();
        if p2.idx == p.idx {
            assert_eq!(rf.yrot(p2), None);
        }
    }

    #[test]
    fn arch_state_reads_through_rat() {
        let mut rf = RegFile::new(64, 64);
        let (p, _) = rf.alloc(RegClass::Int, 4).unwrap();
        rf.write(p, 99);
        assert_eq!(rf.arch_int()[4], 99);
        let (pf, _) = rf.alloc(RegClass::Fp, 0).unwrap();
        rf.write(pf, 2.5f64.to_bits());
        assert_eq!(f64::from_bits(rf.arch_fp()[0]), 2.5);
    }

    #[test]
    fn unwrite_makes_not_ready() {
        let mut rf = RegFile::new(64, 64);
        let (p, _) = rf.alloc(RegClass::Int, 1).unwrap();
        rf.write(p, 5);
        rf.unwrite(p);
        assert!(!rf.is_ready(p));
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_physical_registers_panics() {
        let _ = RegFile::new(32, 64);
    }

    #[test]
    fn waiters_drain_once_and_clear_on_realloc() {
        let mut rf = RegFile::new(64, 64);
        let (p, _) = rf.alloc(RegClass::Int, 1).unwrap();
        rf.add_waiter(p, 7, 100);
        rf.add_waiter(p, 9, 101);
        let mut out = Vec::new();
        rf.drain_waiters_into(p, &mut out);
        assert_eq!(out, vec![(7, 100), (9, 101)]);
        out.clear();
        rf.drain_waiters_into(p, &mut out);
        assert!(out.is_empty(), "waiters deliver exactly once");
        // A stale registration must not survive reallocation of the slot.
        rf.add_waiter(p, 11, 102);
        rf.release(p);
        let (p2, _) = rf.alloc(RegClass::Int, 2).unwrap();
        if p2.idx == p.idx {
            rf.drain_waiters_into(p2, &mut out);
            assert!(out.is_empty());
        }
    }
}
