//! Branch prediction: tournament (local/global/chooser) direction
//! predictor, branch target buffer, and return address stack (Table I).

/// A 2-bit saturating counter.
#[derive(Debug, Clone, Copy, Default)]
struct Counter2(u8);

impl Counter2 {
    fn taken(self) -> bool {
        self.0 >= 2
    }
    fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

const LOCAL_ENTRIES: usize = 1024;
const LOCAL_HIST_BITS: usize = 10;
const GLOBAL_BITS: usize = 12;

/// Tournament direction predictor: a local-history component, a global-
/// history component, and a chooser trained toward whichever was right.
///
/// STT keeps this structure safe by never letting tainted data reach it:
/// the pipeline defers `train`/`resolve` calls until the branch's
/// predicate is untainted (Section III-B). The predictor itself is
/// oblivious to that policy.
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    local_hist: Vec<u16>,
    local_pht: Vec<Counter2>,
    global_pht: Vec<Counter2>,
    chooser: Vec<Counter2>,
    global_hist: u64,
}

impl Default for TournamentPredictor {
    fn default() -> Self {
        TournamentPredictor {
            local_hist: vec![0; LOCAL_ENTRIES],
            local_pht: vec![Counter2::default(); 1 << LOCAL_HIST_BITS],
            global_pht: vec![Counter2::default(); 1 << GLOBAL_BITS],
            chooser: vec![Counter2::default(); 1 << GLOBAL_BITS],
            global_hist: 0,
        }
    }
}

impl TournamentPredictor {
    /// Creates a predictor with default table sizes.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn local_index(&self, pc: u64) -> usize {
        (pc as usize) & (LOCAL_ENTRIES - 1)
    }

    fn global_index(&self) -> usize {
        (self.global_hist as usize) & ((1 << GLOBAL_BITS) - 1)
    }

    /// Predicts the direction of the branch at `pc` (speculatively updates
    /// global history; corrected on `resolve` if wrong).
    pub fn predict(&mut self, pc: u64) -> bool {
        let l_idx = self.local_index(pc);
        let local = self.local_pht[self.local_hist[l_idx] as usize % self.local_pht.len()].taken();
        let global = self.global_pht[self.global_index()].taken();
        let use_global = self.chooser[self.global_index()].taken();
        let taken = if use_global { global } else { local };
        self.global_hist = (self.global_hist << 1) | u64::from(taken);
        taken
    }

    /// Trains with the resolved outcome. Called only once the branch's
    /// predicate is untainted.
    pub fn resolve(&mut self, pc: u64, taken: bool, predicted: bool) {
        // Repair speculative global history on a misprediction.
        if taken != predicted {
            self.global_hist = (self.global_hist & !1) | u64::from(taken);
        }
        let hist_before = self.global_hist >> 1;
        let g_idx = (hist_before as usize) & ((1 << GLOBAL_BITS) - 1);
        let l_idx = self.local_index(pc);
        let lp_idx = self.local_hist[l_idx] as usize % self.local_pht.len();

        let local_correct = self.local_pht[lp_idx].taken() == taken;
        let global_correct = self.global_pht[g_idx].taken() == taken;
        if global_correct != local_correct {
            self.chooser[g_idx].train(global_correct);
        }
        self.local_pht[lp_idx].train(taken);
        self.global_pht[g_idx].train(taken);
        self.local_hist[l_idx] =
            ((self.local_hist[l_idx] << 1) | u16::from(taken)) & ((1 << LOCAL_HIST_BITS) - 1);
    }
}

/// Direct-mapped branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>,
}

impl Btb {
    /// Creates a BTB with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "BTB size must be a power of two");
        Btb { entries: vec![None; entries] }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.entries.len() - 1)
    }

    /// Predicted target for the control instruction at `pc`, if cached.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Installs/updates the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
    }
}

/// Return address stack (circular, overwrite-on-overflow).
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u64>,
    cap: usize,
}

impl Ras {
    /// Creates a RAS with `cap` entries.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Ras { stack: Vec::with_capacity(cap), cap }
    }

    /// Pushes a return address (drops the oldest on overflow).
    pub fn push(&mut self, addr: u64) {
        if self.stack.len() == self.cap {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address.
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tournament_learns_always_taken() {
        // Needs enough iterations to saturate the history registers and
        // train the pattern tables they index.
        let mut p = TournamentPredictor::new();
        let pc = 0x10;
        for _ in 0..64 {
            let pred = p.predict(pc);
            p.resolve(pc, true, pred);
        }
        assert!(p.predict(pc));
    }

    #[test]
    fn tournament_learns_never_taken() {
        let mut p = TournamentPredictor::new();
        let pc = 0x20;
        for _ in 0..64 {
            let pred = p.predict(pc);
            p.resolve(pc, false, pred);
        }
        assert!(!p.predict(pc));
    }

    #[test]
    fn tournament_learns_alternating_via_history() {
        let mut p = TournamentPredictor::new();
        let pc = 0x30;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..200u32 {
            let taken = i % 2 == 0;
            let pred = p.predict(pc);
            if i >= 100 {
                total += 1;
                correct += u32::from(pred == taken);
            }
            p.resolve(pc, taken, pred);
        }
        assert!(
            correct * 10 >= total * 9,
            "alternating pattern should be >90% predictable, got {correct}/{total}"
        );
    }

    #[test]
    fn btb_roundtrip_and_alias() {
        let mut b = Btb::new(16);
        assert_eq!(b.lookup(5), None);
        b.update(5, 100);
        assert_eq!(b.lookup(5), Some(100));
        // Aliasing pc (5 + 16) evicts.
        b.update(21, 200);
        assert_eq!(b.lookup(5), None);
        assert_eq!(b.lookup(21), Some(200));
    }

    #[test]
    fn ras_lifo_and_overflow() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // drops 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn btb_non_pow2_panics() {
        let _ = Btb::new(10);
    }
}
