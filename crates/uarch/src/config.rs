//! Core and protection configuration (Tables I and II of the paper).

use sdo_mem::CacheLevel;

/// Attack model determining when speculatively-accessed data untaints
/// (Section III, "Taint/Untaint Tracking").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackModel {
    /// Control-flow speculation only: an access instruction untaints when
    /// all older control-flow instructions have resolved.
    Spectre,
    /// All forms of speculation: an access instruction untaints when it
    /// can no longer be squashed.
    Futuristic,
}

impl AttackModel {
    /// Both models, Spectre first (Fig. 6 upper/lower halves).
    pub const ALL: [AttackModel; 2] = [AttackModel::Spectre, AttackModel::Futuristic];
}

impl std::fmt::Display for AttackModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackModel::Spectre => f.write_str("Spectre"),
            AttackModel::Futuristic => f.write_str("Futuristic"),
        }
    }
}

/// Which location predictor an SDO configuration uses (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Always predict a fixed cache level.
    Static(CacheLevel),
    /// Greedy component alone (ablation).
    Greedy,
    /// Loop component alone (ablation).
    Loop,
    /// The paper's hybrid greedy/loop chooser.
    Hybrid,
    /// Two-level pattern predictor (extension beyond the paper;
    /// DESIGN.md §6).
    Pattern,
    /// Oracle residency (upper bound).
    Perfect,
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictorKind::Static(l) => write!(f, "Static {l}"),
            PredictorKind::Greedy => f.write_str("Greedy"),
            PredictorKind::Loop => f.write_str("Loop"),
            PredictorKind::Hybrid => f.write_str("Hybrid"),
            PredictorKind::Pattern => f.write_str("Pattern"),
            PredictorKind::Perfect => f.write_str("Perfect"),
        }
    }
}

/// SDO-specific knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdoConfig {
    /// Location predictor choice.
    pub predictor: PredictorKind,
    /// Early forwarding from the wait buffer once safe (Section V-C2
    /// optimization; off for the ablation bench).
    pub early_forward: bool,
    /// Allow the dynamic predictors to predict DRAM, reverting those loads
    /// to STT-style delay (Section VI-B). When `false`, DRAM predictions
    /// are clamped to L3 (ablation: forces a fail + squash for DRAM data).
    pub allow_dram_prediction: bool,
}

impl SdoConfig {
    /// The paper's default SDO settings with the given predictor.
    #[must_use]
    pub fn with_predictor(predictor: PredictorKind) -> Self {
        SdoConfig { predictor, early_forward: true, allow_dram_prediction: true }
    }
}

/// The protection scheme in force — one row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// Unmodified insecure processor.
    Unsafe,
    /// STT: delay execution of tainted transmitters.
    Stt {
        /// Also treat `fmul`/`fdiv`/`fsqrt` as transmitters
        /// (`STT{ld+fp}` vs `STT{ld}`).
        fp_transmitters: bool,
    },
    /// STT + SDO: tainted loads issue as Obl-Ld, tainted FP transmit ops
    /// execute the predict-normal DO variant. (All SDO configurations
    /// protect FP, per Section VIII-A.)
    Sdo(SdoConfig),
}

impl Protection {
    /// Whether tainted FP transmit ops need protection under this scheme.
    #[must_use]
    pub fn protects_fp(&self) -> bool {
        match self {
            Protection::Unsafe => false,
            Protection::Stt { fp_transmitters } => *fp_transmitters,
            Protection::Sdo(_) => true,
        }
    }
}

/// Security configuration: protection scheme × attack model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityConfig {
    /// The protection scheme.
    pub protection: Protection,
    /// The attack model (untaint timing). Ignored by `Unsafe`.
    pub attack: AttackModel,
}

impl SecurityConfig {
    /// The insecure baseline.
    #[must_use]
    pub fn unsafe_baseline() -> Self {
        SecurityConfig { protection: Protection::Unsafe, attack: AttackModel::Spectre }
    }
}

/// Functional-unit pool sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuPool {
    /// Simple integer ALUs (also execute branches and moves).
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_muldiv: u32,
    /// FP units.
    pub fp: u32,
    /// Memory ports (load issue + store address generation).
    pub mem_ports: u32,
}

/// Operation latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Integer ALU.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide.
    pub int_div: u64,
    /// FP add/sub.
    pub fp_add: u64,
    /// FP multiply, fast (normal-operand) path.
    pub fp_mul: u64,
    /// FP divide, fast path.
    pub fp_div: u64,
    /// FP square root, fast path.
    pub fp_sqrt: u64,
    /// Extra cycles for the subnormal slow path of FP transmit ops — the
    /// operand-dependent timing that makes them transmitters.
    pub fp_subnormal_penalty: u64,
}

/// Core (pipeline) configuration. [`CoreConfig::table_i`] reproduces the
/// paper's Table I pipeline row: 8-wide fetch/decode/issue/commit, 32/32
/// SQ/LQ entries, 192 ROB, tournament branch predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Fetch/decode/issue/commit width.
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Issue-queue (scheduler) entries.
    pub iq_entries: usize,
    /// Physical integer registers.
    pub phys_int_regs: usize,
    /// Physical FP registers.
    pub phys_fp_regs: usize,
    /// Fetch-to-dispatch depth in cycles (mispredict penalty floor).
    pub frontend_latency: u64,
    /// Functional units.
    pub fus: FuPool,
    /// Latencies.
    pub lat: Latencies,
    /// Branch-target-buffer entries (direct-mapped).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

impl CoreConfig {
    /// The Table I pipeline.
    #[must_use]
    pub fn table_i() -> Self {
        CoreConfig {
            width: 8,
            rob_entries: 192,
            lq_entries: 32,
            sq_entries: 32,
            iq_entries: 64,
            phys_int_regs: 256,
            phys_fp_regs: 256,
            frontend_latency: 5,
            fus: FuPool { int_alu: 4, int_muldiv: 1, fp: 2, mem_ports: 2 },
            lat: Latencies {
                int_alu: 1,
                int_mul: 3,
                int_div: 20,
                fp_add: 3,
                fp_mul: 4,
                fp_div: 12,
                fp_sqrt: 20,
                fp_subnormal_penalty: 40,
            },
            btb_entries: 512,
            ras_entries: 16,
        }
    }

    /// A narrow configuration for unit tests (small structures so hazards
    /// are easy to provoke, same latency ratios).
    #[must_use]
    pub fn tiny() -> Self {
        CoreConfig {
            width: 2,
            rob_entries: 16,
            lq_entries: 4,
            sq_entries: 4,
            iq_entries: 8,
            phys_int_regs: 64,
            phys_fp_regs: 64,
            frontend_latency: 2,
            fus: FuPool { int_alu: 2, int_muldiv: 1, fp: 1, mem_ports: 1 },
            lat: Latencies {
                int_alu: 1,
                int_mul: 3,
                int_div: 20,
                fp_add: 3,
                fp_mul: 4,
                fp_div: 12,
                fp_sqrt: 20,
                fp_subnormal_penalty: 40,
            },
            btb_entries: 32,
            ras_entries: 4,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::table_i()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_matches_paper() {
        let c = CoreConfig::table_i();
        assert_eq!(c.width, 8);
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.lq_entries, 32);
        assert_eq!(c.sq_entries, 32);
    }

    #[test]
    fn protection_fp_flag() {
        assert!(!Protection::Unsafe.protects_fp());
        assert!(!Protection::Stt { fp_transmitters: false }.protects_fp());
        assert!(Protection::Stt { fp_transmitters: true }.protects_fp());
        assert!(Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Hybrid)).protects_fp());
    }

    #[test]
    fn sdo_defaults() {
        let s = SdoConfig::with_predictor(PredictorKind::Static(CacheLevel::L2));
        assert!(s.early_forward);
        assert!(s.allow_dram_prediction);
    }

    #[test]
    fn display_names() {
        assert_eq!(AttackModel::Spectre.to_string(), "Spectre");
        assert_eq!(PredictorKind::Static(CacheLevel::L1).to_string(), "Static L1");
        assert_eq!(PredictorKind::Hybrid.to_string(), "Hybrid");
    }

    #[test]
    fn attack_model_all() {
        assert_eq!(AttackModel::ALL.len(), 2);
    }
}
