//! The speculative out-of-order core with STT taint tracking and SDO.
//!
//! A cycle-level model of the Table I pipeline: 8-wide fetch through
//! commit, 192-entry ROB, 32/32 load/store queues, register renaming with
//! RAT checkpoints, a tournament branch predictor, and an issue queue
//! feeding a functional-unit pool. On top of the baseline:
//!
//! * **STT** (Section III): every physical register carries a YRoT (see
//!   [`crate::regfile`]); tainted transmitters — loads, and FP
//!   mul/div/sqrt under `STT{ld+fp}` — are delay-executed until their
//!   operands untaint; branch *resolution* (squash + predictor update) is
//!   deferred until the predicate untaints; consistency squashes are
//!   deferred until the load's address untaints.
//! * **SDO** (Sections IV–VI): under [`Protection::Sdo`], tainted loads
//!   consult the location predictor and issue as Obl-Ld operations driven
//!   by the [`sdo_core::oblld::OblLdFsm`]; tainted FP transmit ops execute
//!   the predict-normal DO variant and squash at untaint on subnormal
//!   inputs; DRAM predictions revert to STT delay.

use crate::branch::{Btb, Ras, TournamentPredictor};
use crate::config::{AttackModel, CoreConfig, PredictorKind, Protection, SecurityConfig};
use crate::regfile::{PhysReg, RatSnapshot, RegClass, RegFile};
use crate::stats::CoreStats;
use crate::trace::PipelineTrace;
use sdo_core::oblld::{OblAction, OblEvent, OblLdFsm};
use sdo_core::predictor::{
    GreedyPredictor, HybridPredictor, LocationPredictor, LoopPredictor, PatternPredictor,
    PerfectPredictor, StaticPredictor,
};
use sdo_core::{fp_do_execute, DoResult};
use sdo_isa::{FpuOp, Instruction, OpClass, Program, Reg};
use sdo_obs::{EventKind as ObsEvent, MemOp, ObsConfig, PipelineObs, QueueCaps, SquashCause};
use sdo_mem::{line_of, CacheLevel, Cycle, MemorySystem, OblReject, ServedBy};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Base of the instruction-text address space: instruction index `pc`
/// occupies bytes `[ITEXT_BASE + pc * 8, ITEXT_BASE + pc * 8 + 8)`.
/// Keeping text far above any data address lets instructions share the
/// unified L2/L3 without colliding with workload data.
pub const ITEXT_BASE: u64 = 1 << 40;

/// Error from [`Core::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The program did not halt within the cycle budget.
    CycleLimit {
        /// The exhausted budget.
        max_cycles: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::CycleLimit { max_cycles } => {
                write!(f, "program did not halt within {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Waiting,
    Executing,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    pc: u64,
    inst: Instruction,
    pred_taken: bool,
    pred_target: u64,
    ready_at: Cycle,
}

#[derive(Debug)]
struct DynInst {
    seq: u64,
    pc: u64,
    inst: Instruction,
    status: Status,
    done: bool,
    safe: bool,
    rat_snap: RatSnapshot,
    pdst: Option<PhysReg>,
    old_pdst: Option<PhysReg>,
    psrcs: [Option<PhysReg>; 4],
    // Control flow.
    pred_taken: bool,
    pred_target: u64,
    outcome: Option<(bool, u64)>, // (taken, next pc)
    resolution_applied: bool,
    // Memory.
    addr: Option<u64>,
    store_data: Option<u64>,
    width_bytes: u64,
    // Protection state.
    delayed_since: Option<Cycle>,
    delay_counted: bool,
    obl: Option<OblLdFsm>,
    obl_safe_sent: bool,
    obl_first_hit_at: Option<Cycle>,
    sq_forwarded: bool,
    pending_squash: bool,
    fp_failed: bool,
}

impl DynInst {
    fn is_blocker_ctrl(&self) -> bool {
        (self.inst.is_cond_branch() || self.inst.is_indirect()) && !self.resolution_applied
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// Functional-unit completion; write `value` (if any) to the dest.
    Exec { value: Option<u64> },
    /// Normal load completion.
    LoadDone { value: u64 },
    /// One Obl-Ld per-level response.
    OblResp { level: CacheLevel, hit: bool, value: Option<u64> },
    /// Validation access completion.
    ValidationDone { value: u64, matches: bool, level: CacheLevel },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: Cycle,
    order: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.order).cmp(&(other.at, other.order))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct FuBudget {
    alu: u32,
    muldiv: u32,
    fp: u32,
    mem: u32,
}

/// One simulated out-of-order core.
///
/// Create with [`Core::new`], then either step cycle-by-cycle with
/// [`Core::tick`] against a shared [`MemorySystem`], or drive to
/// completion with [`Core::run`].
///
/// # Examples
///
/// ```rust
/// use sdo_isa::{Assembler, Reg};
/// use sdo_mem::{MemConfig, MemorySystem};
/// use sdo_uarch::{Core, CoreConfig, SecurityConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut asm = Assembler::new();
/// asm.li(Reg::new(1), 20);
/// asm.muli(Reg::new(2), Reg::new(1), 2);
/// asm.halt();
/// let prog = asm.finish()?;
///
/// let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
/// mem.load_image(prog.data());
/// let mut core = Core::new(0, CoreConfig::table_i(), SecurityConfig::unsafe_baseline(), prog);
/// core.run(&mut mem, 100_000)?;
/// assert_eq!(core.arch_int()[2], 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Core {
    id: usize,
    cfg: CoreConfig,
    sec: SecurityConfig,
    program: Program,
    now: Cycle,
    next_seq: u64,
    next_event_order: u64,
    fetch_pc: u64,
    fetch_halted: bool,
    fetch_q: VecDeque<Fetched>,
    rob: VecDeque<DynInst>,
    iq: Vec<u64>,
    lq: Vec<u64>,
    sq: Vec<u64>,
    regs: RegFile,
    events: BinaryHeap<Reverse<Event>>,
    bp: TournamentPredictor,
    btb: Btb,
    ras: Ras,
    predictor: Box<dyn LocationPredictor>,
    stats: CoreStats,
    halted: bool,
    commit_pcs: Option<Vec<u64>>,
    trace: Option<PipelineTrace>,
    /// Structured observability probe (occupancy histograms + event
    /// trace). `None` unless enabled — the disabled hot path is a single
    /// `Option` check per cycle, with no allocation.
    obs: Option<Box<PipelineObs>>,
    fetch_stall_until: Cycle,
    last_fetch_line: Option<u64>,
    /// Non-pipelined unit occupancy: one slot per integer mul/div unit
    /// and per FP unit. A long-latency op (divide, sqrt, subnormal slow
    /// path) holds its unit until completion — this structural contention
    /// is precisely the FP covert channel of Section I-A.
    muldiv_busy: Vec<Cycle>,
    fp_busy: Vec<Cycle>,
    /// Reusable candidate-sequence buffer for the resolve stage, so the
    /// per-cycle ROB sweeps never allocate once it reaches steady-state
    /// capacity.
    scratch_seqs: Vec<u64>,
    /// Quiescence fast-forward: when a tick changes nothing, jump the
    /// clock to the event horizon instead of stepping stalled cycles one
    /// at a time. Cycle-exact (see DESIGN.md); off by default, opted in
    /// by single-core drivers via [`Core::set_fast_forward`].
    fast_forward: bool,
    /// Hard ceiling for a fast-forward jump. [`Core::run`] keeps it at
    /// its `max_cycles` so a hung program still stops at exactly the
    /// cycle limit a stepped loop would reach.
    skip_cap: Cycle,
    /// Cycles elided by fast-forward jumps. They are still fully
    /// accounted in `stats.cycles` (and every other per-cycle counter);
    /// this only records how many the loop did not step individually.
    /// Kept out of [`CoreStats`] so metric/CSV exports stay identical
    /// with skipping on or off.
    skipped_cycles: u64,
    /// Whether any stage changed state during the current tick (the
    /// fast-forward gate).
    progressed: bool,
}

fn build_predictor(kind: PredictorKind) -> Box<dyn LocationPredictor> {
    match kind {
        PredictorKind::Static(level) => Box::new(StaticPredictor::new(level)),
        PredictorKind::Greedy => Box::new(GreedyPredictor::default()),
        PredictorKind::Loop => Box::new(LoopPredictor::default()),
        PredictorKind::Hybrid => Box::new(HybridPredictor::default()),
        PredictorKind::Pattern => Box::new(PatternPredictor::default()),
        PredictorKind::Perfect => Box::new(PerfectPredictor),
    }
}

impl Core {
    /// Builds a core with its own branch predictor, register file and (for
    /// SDO configurations) location predictor. `id` selects the core's
    /// tile in the shared memory system.
    #[must_use]
    pub fn new(id: usize, cfg: CoreConfig, sec: SecurityConfig, program: Program) -> Self {
        let kind = match sec.protection {
            Protection::Sdo(s) => s.predictor,
            // Unused, but keeps the field total.
            _ => PredictorKind::Static(CacheLevel::L1),
        };
        Core {
            id,
            cfg,
            sec,
            program,
            now: 0,
            next_seq: 0,
            next_event_order: 0,
            fetch_pc: 0,
            fetch_halted: false,
            fetch_q: VecDeque::new(),
            rob: VecDeque::new(),
            iq: Vec::new(),
            lq: Vec::new(),
            sq: Vec::new(),
            regs: RegFile::new(cfg.phys_int_regs, cfg.phys_fp_regs),
            events: BinaryHeap::new(),
            bp: TournamentPredictor::new(),
            btb: Btb::new(cfg.btb_entries),
            ras: Ras::new(cfg.ras_entries),
            predictor: build_predictor(kind),
            stats: CoreStats::default(),
            halted: false,
            commit_pcs: None,
            trace: None,
            obs: None,
            fetch_stall_until: 0,
            last_fetch_line: None,
            muldiv_busy: vec![0; cfg.fus.int_muldiv as usize],
            fp_busy: vec![0; cfg.fus.fp as usize],
            scratch_seqs: Vec::new(),
            fast_forward: false,
            skip_cap: 0,
            skipped_cycles: 0,
            progressed: false,
        }
    }

    /// Enables (or disables) quiescence fast-forward for this core.
    ///
    /// Only meaningful for a core driven through [`Core::run`] as the
    /// sole core on its memory system: the event horizon consults this
    /// core's timers plus the shared memory system, so another core's
    /// activity during a skipped interval would be missed. Multi-core
    /// lockstep drivers must leave this off.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Cycles elided by quiescence fast-forward so far. Always 0 unless
    /// [`Core::set_fast_forward`] enabled skipping; skipped cycles are
    /// still fully accounted in [`Core::stats`].
    #[must_use]
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Enables recording of committed PCs (for differential testing).
    pub fn record_commits(&mut self) {
        self.commit_pcs = Some(Vec::new());
    }

    /// Enables pipeline tracing for the first `capacity` dispatched
    /// instructions (see [`PipelineTrace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(PipelineTrace::new(capacity));
    }

    /// The recorded pipeline trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&PipelineTrace> {
        self.trace.as_ref()
    }

    /// Enables structured observability per `cfg`: per-cycle occupancy
    /// histograms sized from this core's queue capacities, and/or a
    /// bounded event trace. `mshr_capacity` sizes the MSHR occupancy
    /// histogram (the L1 MSHR file lives in the memory system). A
    /// disabled `cfg` is a no-op, preserving the allocation-free path.
    pub fn enable_obs(&mut self, cfg: ObsConfig, mshr_capacity: usize) {
        if cfg.enabled() {
            self.obs = Some(Box::new(PipelineObs::new(
                cfg,
                QueueCaps {
                    rob: self.cfg.rob_entries,
                    iq: self.cfg.iq_entries,
                    lq: self.cfg.lq_entries,
                    sq: self.cfg.sq_entries,
                    mshr: mshr_capacity,
                },
            )));
        }
    }

    /// The observability probe, if enabled.
    #[must_use]
    pub fn obs(&self) -> Option<&PipelineObs> {
        self.obs.as_deref()
    }

    /// Detaches the observability probe (e.g. to fold into a run
    /// result after the core is dropped).
    pub fn take_obs(&mut self) -> Option<Box<PipelineObs>> {
        self.obs.take()
    }

    /// Committed PCs, if recording was enabled.
    #[must_use]
    pub fn commit_pcs(&self) -> Option<&[u64]> {
        self.commit_pcs.as_deref()
    }

    /// Whether a `Halt` has committed.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Committed architectural integer state.
    #[must_use]
    pub fn arch_int(&self) -> [u64; 32] {
        self.regs.arch_int()
    }

    /// Committed architectural FP state (bit patterns).
    #[must_use]
    pub fn arch_fp(&self) -> [u64; 32] {
        self.regs.arch_fp()
    }

    /// Renders a short diagnostic description of the oldest ROB entries
    /// (pipeline state at a glance; intended for debugging stuck runs).
    #[must_use]
    pub fn debug_head(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cycle {} rob {} iq {} lq {} sq {} fetch_q {} events {} next_ev {:?}",
            self.now, self.rob.len(), self.iq.len(), self.lq.len(), self.sq.len(), self.fetch_q.len(),
            self.events.len(), self.events.peek().map(|e| (e.0.at, e.0.seq, e.0.kind)));
        for e in self.rob.iter().take(n) {
            let _ = writeln!(
                out,
                "  seq {} pc {} {:?} st {:?} done {} safe {} res_applied {} obl {:?} fsm_done {:?} safe_sent {} pend_sq {}",
                e.seq, e.pc, e.inst.class(), e.status, e.done, e.safe, e.resolution_applied,
                e.obl.as_ref().map(|f| f.predicted()),
                e.obl.as_ref().map(|f| f.is_done()),
                e.obl_safe_sent, e.pending_squash,
            );
            let _ = writeln!(
                out,
                "      awaiting_validation {:?} fwd {:?}",
                e.obl.as_ref().map(|f| f.awaiting_validation()),
                e.obl.as_ref().map(|f| f.forwarded_value()),
            );
        }
        out
    }

    /// Runs until halt or `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::CycleLimit`] if the program does not halt in
    /// time.
    pub fn run(&mut self, mem: &mut MemorySystem, max_cycles: u64) -> Result<(), RunError> {
        self.skip_cap = max_cycles;
        while !self.halted {
            if self.now >= max_cycles {
                return Err(RunError::CycleLimit { max_cycles });
            }
            self.tick(mem);
        }
        Ok(())
    }

    /// Advances the core by one cycle.
    ///
    /// Stage order within a cycle (oldest effects first):
    ///
    /// 1. **deliver events** — functional-unit completions, load data,
    ///    Obl-Ld responses and validation results scheduled for this
    ///    cycle write back and wake dependents;
    /// 2. **invalidation intake** — coherence invalidations mark
    ///    completed-but-unretired loads for (deferred) consistency
    ///    squashes;
    /// 3. **resolve** — visibility points advance (untaint), branch
    ///    resolutions whose predicates untainted apply (squash +
    ///    predictor update), Obl-Ld `Safe` events fire, failed FP-SDO ops
    ///    re-execute, deferred consistency squashes apply;
    /// 4. **commit** — up to `width` completed instructions retire in
    ///    order; stores perform;
    /// 5. **issue** — ready instructions leave the issue queue for
    ///    functional units or the memory system, subject to STT/SDO
    ///    transmitter rules;
    /// 6. **dispatch** — fetched instructions rename into the ROB/queues;
    /// 7. **fetch** — the frontend follows branch predictions, gated by
    ///    the instruction cache.
    pub fn tick(&mut self, mem: &mut MemorySystem) {
        if self.halted {
            return;
        }
        self.now += 1;
        self.stats.cycles = self.now;
        self.progressed = false;
        // Per-cycle counters that repeat identically over a quiescent
        // interval; their deltas this tick are replayed in bulk if the
        // tick turns out to be skippable.
        let stall0 = self.stats.obl.validation_stall_cycles;
        let retry0 = self.stats.obl.mshr_retries;
        let reject0 = mem.stats().obl_mshr_rejects;
        self.deliver_events(mem);
        self.intake_invalidations(mem);
        self.resolve_stage(mem);
        self.commit_stage(mem);
        self.issue_stage(mem);
        self.dispatch_stage();
        self.fetch_stage(mem);
        if let Some(obs) = self.obs.as_deref_mut() {
            if obs.wants_occupancy() {
                let mshr = mem.mshr_in_use(self.id, self.now) as u64;
                obs.sample(
                    self.rob.len() as u64,
                    self.iq.len() as u64,
                    self.lq.len() as u64,
                    self.sq.len() as u64,
                    mshr,
                );
            }
        }
        if self.fast_forward && !self.progressed && !self.halted && self.now < self.skip_cap {
            self.quiesce_skip(mem, stall0, retry0, reject0);
        }
    }

    /// Fast-forwards over a quiescent interval. Called after a tick in
    /// which no stage changed any state: every future change must then
    /// originate from an already-computed timer — a scheduled completion
    /// event, the frontend stall/ready timers, a non-pipelined unit
    /// release, or an in-flight miss in the memory system. The **event
    /// horizon** is the earliest such cycle; the clock jumps to just
    /// before it (clamped to `skip_cap`), and the skipped cycles' only
    /// per-cycle effects — occupancy samples plus the stall/retry
    /// counters this tick accrued, which repeat identically while
    /// nothing changes — are applied in bulk. See DESIGN.md
    /// ("Quiescence fast-forward") for the cycle-exactness argument.
    fn quiesce_skip(&mut self, mem: &mut MemorySystem, stall0: u64, retry0: u64, reject0: u64) {
        let now = self.now;
        let mut horizon: Option<Cycle> = None;
        {
            let mut consider = |at: Cycle| {
                if at > now {
                    horizon = Some(horizon.map_or(at, |h| h.min(at)));
                }
            };
            if let Some(Reverse(ev)) = self.events.peek() {
                consider(ev.at);
            }
            if !self.fetch_halted {
                consider(self.fetch_stall_until);
            }
            if let Some(f) = self.fetch_q.front() {
                consider(f.ready_at);
            }
            for &busy in self.muldiv_busy.iter().chain(&self.fp_busy) {
                consider(busy);
            }
            if let Some(at) = mem.next_event(now) {
                consider(at);
            }
        }
        // No wake source at all means nothing will ever change: jump
        // straight to the cycle limit, exactly where a stepped loop
        // would give up.
        let target = horizon.map_or(self.skip_cap, |h| (h - 1).min(self.skip_cap));
        if target <= now {
            return;
        }
        let n = target - now;
        self.now = target;
        self.stats.cycles = target;
        self.skipped_cycles += n;
        let stall_delta = self.stats.obl.validation_stall_cycles - stall0;
        let retry_delta = self.stats.obl.mshr_retries - retry0;
        let reject_delta = mem.stats().obl_mshr_rejects - reject0;
        self.stats.obl.validation_stall_cycles += stall_delta * n;
        self.stats.obl.mshr_retries += retry_delta * n;
        mem.record_obl_mshr_rejects(reject_delta * n);
        if let Some(obs) = self.obs.as_deref_mut() {
            if obs.wants_occupancy() {
                // Queue fill levels are frozen during quiescence, and the
                // horizon is clamped below every in-flight MSHR
                // completion, so one bulk sample is exact.
                let mshr = mem.mshr_in_use(self.id, target) as u64;
                obs.sample_n(
                    self.rob.len() as u64,
                    self.iq.len() as u64,
                    self.lq.len() as u64,
                    self.sq.len() as u64,
                    mshr,
                    n,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // ROB helpers
    // ------------------------------------------------------------------

    fn rob_index(&self, seq: u64) -> Option<usize> {
        // The ROB is seq-sorted but not contiguous: squashes leave gaps in
        // the sequence-number space (seqs are never reused).
        self.rob.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    fn ent(&self, seq: u64) -> Option<&DynInst> {
        self.rob_index(seq).map(|i| &self.rob[i])
    }

    fn ent_mut(&mut self, seq: u64) -> Option<&mut DynInst> {
        self.rob_index(seq).map(move |i| &mut self.rob[i])
    }

    /// Whether a YRoT still denotes tainted data: true iff the rooted load
    /// is in flight and has not reached its visibility point.
    fn taint_active(&self, yrot: Option<u64>) -> bool {
        match yrot {
            None => false,
            Some(seq) => self.ent(seq).is_some_and(|e| !e.safe),
        }
    }

    fn srcs_tainted(&self, seq: u64) -> bool {
        let e = self.ent(seq).expect("live instruction");
        e.psrcs
            .iter()
            .flatten()
            .any(|p| self.taint_active(self.regs.yrot(*p)))
    }

    fn addr_operand_tainted(&self, seq: u64) -> bool {
        // For loads the address operand is the (single) integer source.
        self.srcs_tainted(seq)
    }

    fn schedule(&mut self, at: Cycle, seq: u64, kind: EvKind) {
        self.next_event_order += 1;
        let order = self.next_event_order;
        self.events.push(Reverse(Event { at: at.max(self.now + 1), order, seq, kind }));
    }

    // ------------------------------------------------------------------
    // Event delivery
    // ------------------------------------------------------------------

    fn deliver_events(&mut self, mem: &mut MemorySystem) {
        while let Some(Reverse(ev)) = self.events.peek().copied() {
            if ev.at > self.now {
                break;
            }
            self.events.pop();
            // Even a stale (squashed) delivery counts as progress: it
            // changes the heap, and the horizon may have pointed here.
            self.progressed = true;
            if self.ent(ev.seq).is_none() {
                continue; // squashed
            }
            match ev.kind {
                EvKind::Exec { value } => self.on_exec_done(ev.seq, value),
                EvKind::LoadDone { value } => self.on_load_done(ev.seq, value),
                EvKind::OblResp { level, hit, value } => {
                    if self.obs.is_some() {
                        let pc = self.ent(ev.seq).expect("live").pc;
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.emit(self.now, ev.seq, pc, ObsEvent::OblTouch { level: level.depth() });
                        }
                    }
                    self.on_fsm_event(mem, ev.seq, OblEvent::Response { level, hit, value });
                }
                EvKind::ValidationDone { value, matches, level } => {
                    self.on_fsm_event(mem, ev.seq, OblEvent::ValidationDone { value, matches, level });
                }
            }
        }
    }

    fn on_exec_done(&mut self, seq: u64, value: Option<u64>) {
        let e = self.ent_mut(seq).expect("live");
        if let (Some(v), Some(p)) = (value, e.pdst) {
            self.regs.write(p, v);
        }
        let e = self.ent_mut(seq).expect("live");
        e.status = Status::Done;
        // Control instructions whose resolution is still pending (squash +
        // predictor update may be deferred by STT until the predicate
        // untaints) become `done` only when the resolution applies.
        e.done = e.resolution_applied;
        if let Some(t) = self.trace.as_mut() {
            t.complete(seq, self.now);
        }
    }

    fn load_value_for_width(word: u64, width: u64) -> u64 {
        match width {
            1 => word & 0xff,
            _ => word,
        }
    }

    fn on_load_done(&mut self, seq: u64, value: u64) {
        let e = self.ent_mut(seq).expect("live");
        let v = Self::load_value_for_width(value, e.width_bytes);
        if let Some(p) = e.pdst {
            self.regs.write(p, v);
        }
        let e = self.ent_mut(seq).expect("live");
        e.status = Status::Done;
        e.done = true;
        if let Some(t) = self.trace.as_mut() {
            t.complete(seq, self.now);
        }
    }

    // ------------------------------------------------------------------
    // Obl-Ld FSM action plumbing
    // ------------------------------------------------------------------

    fn on_fsm_event(&mut self, mem: &mut MemorySystem, seq: u64, event: OblEvent) {
        let now = self.now;
        let Some(e) = self.ent_mut(seq) else { return };
        // Track imprecision: remember when the first success arrived.
        if let OblEvent::Response { hit: true, .. } = event {
            if e.obl_first_hit_at.is_none() {
                e.obl_first_hit_at = Some(now);
            }
        }
        let Some(fsm) = e.obl.as_mut() else { return };
        let actions = fsm.on_event(event);
        let from_validation = matches!(event, OblEvent::ValidationDone { .. });
        self.apply_obl_actions(mem, seq, &actions, from_validation);
    }

    fn apply_obl_actions(
        &mut self,
        mem: &mut MemorySystem,
        seq: u64,
        actions: &[OblAction],
        from_validation: bool,
    ) {
        for action in actions {
            match *action {
                OblAction::Forward { value } => {
                    let e = self.ent_mut(seq).expect("live");
                    // Store-queue forwarding overrides the memory value
                    // (Section V-C3): the Obl-Ld executed for timing, the
                    // data comes from the SQ. (Handled before FSM creation
                    // in this implementation; kept for defense in depth.)
                    let v = Self::load_value_for_width(value, e.width_bytes);
                    if let Some(p) = e.pdst {
                        self.regs.write(p, v);
                    }
                    // Imprecision accounting: cycles between the first
                    // success response and this forward.
                    let e = self.ent(seq).expect("live");
                    if !from_validation {
                        if let Some(first) = e.obl_first_hit_at {
                            self.stats.obl.imprecision_cycles += self.now.saturating_sub(first);
                        }
                    }
                }
                OblAction::Squash => {
                    let cause = if from_validation {
                        self.stats.squashes.validation += 1;
                        SquashCause::Validation
                    } else {
                        self.stats.squashes.obl_fail += 1;
                        SquashCause::OblFail
                    };
                    let e = self.ent(seq).expect("live");
                    let pc = e.pc;
                    let redirect = e.pc + 1;
                    if let Some(p) = e.pdst {
                        self.regs.unwrite(p);
                    }
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.emit(self.now, seq, pc, ObsEvent::Squash { cause });
                    }
                    self.squash_after(seq);
                    // Re-fetch the (squashed) dependents of the load.
                    self.fetch_pc = redirect;
                }
                OblAction::IssueValidation => {
                    let e = self.ent(seq).expect("live");
                    let pc = e.pc;
                    let addr = e.addr.expect("issued load has an address");
                    let expected = e.obl.as_ref().and_then(OblLdFsm::forwarded_value).unwrap_or(0);
                    self.stats.obl.validations += 1;
                    let (res, matches) = mem.validate(self.id, addr, expected, self.now);
                    if self.obs.is_some() {
                        let tainted = self.addr_operand_tainted(seq);
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.emit(self.now, seq, pc, ObsEvent::Validate { matched: matches });
                            o.emit(
                                self.now,
                                seq,
                                pc,
                                ObsEvent::MemAccess { line: addr / 64, op: MemOp::Validate, tainted },
                            );
                        }
                    }
                    self.schedule(
                        res.complete_at,
                        seq,
                        EvKind::ValidationDone {
                            value: res.value,
                            matches,
                            level: res.served_by.level(),
                        },
                    );
                }
                OblAction::IssueExposure => {
                    let e = self.ent(seq).expect("live");
                    let pc = e.pc;
                    let addr = e.addr.expect("issued load has an address");
                    self.stats.obl.exposures += 1;
                    mem.expose(self.id, addr, self.now);
                    if self.obs.is_some() {
                        let tainted = self.addr_operand_tainted(seq);
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.emit(self.now, seq, pc, ObsEvent::Expose);
                            o.emit(
                                self.now,
                                seq,
                                pc,
                                ObsEvent::MemAccess { line: addr / 64, op: MemOp::Expose, tainted },
                            );
                        }
                    }
                }
                OblAction::UpdatePredictor { level } => {
                    let e = self.ent(seq).expect("live");
                    let pc = e.pc;
                    let predicted = e.obl.as_ref().expect("obl load").predicted();
                    if self.obs.is_some() {
                        let tainted = self.addr_operand_tainted(seq);
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.emit(self.now, seq, pc, ObsEvent::PredictorUpdate { tainted });
                        }
                    }
                    self.predictor.update(pc, level);
                    self.stats.record_prediction(predicted.depth(), level.depth());
                }
                OblAction::Complete => {
                    let e = self.ent_mut(seq).expect("live");
                    e.status = Status::Done;
                    e.done = true;
                    if let Some(t) = self.trace.as_mut() {
                        t.complete(seq, self.now);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Invalidation intake (memory consistency, Section V-C1)
    // ------------------------------------------------------------------

    fn intake_invalidations(&mut self, mem: &mut MemorySystem) {
        let invals = mem.take_invalidations(self.id);
        if invals.is_empty() {
            return;
        }
        self.progressed = true;
        for line in invals {
            // Completed-but-unretired loads to this line may violate
            // consistency; mark them. The squash itself is deferred until
            // the load's address is untainted (STT's implicit-channel rule
            // applied to the consistency check). Index iteration: nothing
            // here mutates the load queue, so no snapshot clone is needed.
            for i in 0..self.lq.len() {
                let lq_seq = self.lq[i];
                let Some(e) = self.ent_mut(lq_seq) else { continue };
                if e.pending_squash || !e.done {
                    continue;
                }
                if e.sq_forwarded {
                    continue; // data came from our own store queue
                }
                if e.addr.is_some_and(|a| line_of(a) == line) {
                    e.pending_squash = true;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Resolve stage: visibility, untaint-gated actions
    // ------------------------------------------------------------------

    fn update_visibility(&mut self) {
        let futuristic =
            self.sec.attack == AttackModel::Futuristic && self.sec.protection != Protection::Unsafe;
        let mut blocked = false;
        for e in &mut self.rob {
            if !e.safe && !blocked {
                e.safe = true;
                // An untaint can enable issue/resolve actions later in
                // this same tick — but flag it as progress regardless,
                // so quiescence never hides a visibility advance.
                self.progressed = true;
            }
            if e.is_blocker_ctrl() {
                blocked = true;
            }
            if futuristic && !blocked {
                // A load stops blocking younger visibility once its result
                // is *performed* (value received/forwarded). An Obl-Ld
                // still awaiting its validation no longer blocks: per the
                // paper's footnote 4, reaching the visibility point in the
                // Futuristic model implies a consistency violation can no
                // longer occur — the rare validation-mismatch squash after
                // this point is a documented approximation (it cannot
                // happen at all in single-core runs).
                let load_unperformed = e.inst.is_load()
                    && match &e.obl {
                        Some(fsm) => fsm.forwarded_value().is_none(),
                        None => !e.done,
                    };
                if load_unperformed || e.pending_squash || e.fp_failed {
                    blocked = true;
                }
            }
        }
    }

    fn resolve_stage(&mut self, mem: &mut MemorySystem) {
        self.update_visibility();

        let protected = self.sec.protection != Protection::Unsafe;

        // Candidate sweeps reuse one scratch buffer (taken out of `self`
        // so the loop bodies can borrow `self` mutably) — the resolve
        // stage allocates nothing once the buffer reaches ROB capacity.
        let mut candidates = std::mem::take(&mut self.scratch_seqs);

        // 1. Branch resolutions (executed) whose predicate is untainted.
        candidates.clear();
        candidates.extend(
            self.rob
                .iter()
                .filter(|e| e.outcome.is_some() && e.status == Status::Done && !e.resolution_applied)
                .map(|e| e.seq),
        );
        for &seq in &candidates {
            if self.ent(seq).is_none() {
                break; // a prior resolution squashed the rest
            }
            if protected && self.srcs_tainted(seq) {
                continue; // STT: delay resolution until untainted
            }
            if self.apply_resolution(seq) {
                break; // squash: younger candidates are gone
            }
        }

        // 2. Obl-Ld loads whose address operand just untainted: event C.
        candidates.clear();
        candidates.extend(
            self.rob.iter().filter(|e| e.obl.is_some() && !e.obl_safe_sent).map(|e| e.seq),
        );
        for &seq in &candidates {
            if self.ent(seq).is_none() {
                break;
            }
            if self.addr_operand_tainted(seq) {
                continue;
            }
            let e = self.ent_mut(seq).expect("live");
            e.obl_safe_sent = true;
            self.progressed = true;
            if self.obs.is_some() {
                let pc = self.ent(seq).expect("live").pc;
                if let Some(o) = self.obs.as_deref_mut() {
                    // Before the FSM consumes Safe, so that validations /
                    // exposures / predictor training trace strictly after.
                    o.emit(self.now, seq, pc, ObsEvent::OblSafe);
                }
            }
            self.on_fsm_event(mem, seq, OblEvent::Safe);
            if self.ent(seq).is_some_and(|e| e.obl.as_ref().is_some_and(OblLdFsm::squashed)) {
                break;
            }
        }

        // 3. FP SDO fails whose operands untainted: squash + re-execute.
        candidates.clear();
        candidates.extend(
            self.rob.iter().filter(|e| e.fp_failed && e.status == Status::Done).map(|e| e.seq),
        );
        for &seq in &candidates {
            if self.ent(seq).is_none() {
                break;
            }
            if self.srcs_tainted(seq) {
                continue;
            }
            self.progressed = true;
            self.stats.squashes.fp_fail += 1;
            let e = self.ent(seq).expect("live");
            let pc = e.pc;
            let redirect = e.pc + 1;
            if let Some(p) = e.pdst {
                self.regs.unwrite(p);
            }
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(self.now, seq, pc, ObsEvent::Squash { cause: SquashCause::FpFail });
            }
            self.squash_after(seq);
            self.fetch_pc = redirect;
            // Re-execute on the slow path with the true result.
            let e = self.ent_mut(seq).expect("live");
            e.fp_failed = false;
            e.status = Status::Executing;
            e.done = false;
            let (value, lat) = self.exec_fp(seq, true);
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(self.now, seq, pc, ObsEvent::FpTransmit { tainted: false, oblivious: false });
            }
            // The re-executed slow path occupies an FP unit (structural
            // contention is safe to reveal: the operands are untainted).
            let slot = self.fp_busy.iter_mut().min().expect("fp units exist");
            *slot = (*slot).max(self.now) + lat;
            self.schedule(self.now + lat, seq, EvKind::Exec { value: Some(value) });
            break;
        }

        // 4. Deferred consistency squashes whose address untainted.
        candidates.clear();
        candidates.extend(self.rob.iter().filter(|e| e.pending_squash).map(|e| e.seq));
        for &seq in &candidates {
            if self.ent(seq).is_none() {
                break;
            }
            if protected && self.addr_operand_tainted(seq) {
                continue;
            }
            self.progressed = true;
            self.stats.squashes.consistency += 1;
            let pc = self.ent(seq).expect("live").pc;
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(self.now, seq, pc, ObsEvent::Squash { cause: SquashCause::Consistency });
            }
            self.squash_from(seq);
            self.fetch_pc = pc;
            break;
        }

        self.scratch_seqs = candidates;
    }

    /// Applies a computed branch/jump resolution. Returns `true` if it
    /// squashed.
    fn apply_resolution(&mut self, seq: u64) -> bool {
        self.progressed = true;
        let e = self.ent(seq).expect("live");
        let (taken, next_pc) = e.outcome.expect("resolved");
        let pc = e.pc;
        let pred_taken = e.pred_taken;
        let pred_target = e.pred_target;
        let is_cond = e.inst.is_cond_branch();
        let is_indirect = e.inst.is_indirect();

        if (is_cond || is_indirect) && self.obs.is_some() {
            let tainted = self.srcs_tainted(seq);
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(self.now, seq, pc, ObsEvent::PredictorUpdate { tainted });
            }
        }
        if is_cond {
            self.stats.branches += 1;
            self.bp.resolve(pc, taken, pred_taken);
        }
        if is_indirect {
            self.btb.update(pc, next_pc);
        }
        let e = self.ent_mut(seq).expect("live");
        e.resolution_applied = true;
        e.done = e.status == Status::Done;

        if next_pc != pred_target {
            self.stats.mispredicts += 1;
            self.stats.squashes.branch += 1;
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(self.now, seq, pc, ObsEvent::Squash { cause: SquashCause::Branch });
            }
            self.squash_after(seq);
            self.fetch_pc = next_pc;
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Squash machinery
    // ------------------------------------------------------------------

    /// Squashes every instruction strictly younger than `seq`.
    fn squash_after(&mut self, seq: u64) {
        self.squash_killing_from(seq + 1);
    }

    /// Squashes `seq` and everything younger (re-fetch from its pc).
    fn squash_from(&mut self, seq: u64) {
        self.squash_killing_from(seq);
    }

    fn squash_killing_from(&mut self, first_killed: u64) {
        let mut snap: Option<RatSnapshot> = None;
        while let Some(back) = self.rob.back() {
            if back.seq < first_killed {
                break;
            }
            let e = self.rob.pop_back().expect("non-empty");
            self.stats.squashed_insts += 1;
            if let Some(t) = self.trace.as_mut() {
                t.squash(e.seq, self.now);
            }
            if e.seq == first_killed {
                snap = Some(e.rat_snap);
            }
            if let Some(p) = e.pdst {
                self.regs.release(p);
            }
        }
        if let Some(snap) = snap {
            self.regs.restore(&snap);
        }
        self.iq.retain(|&s| s < first_killed);
        self.lq.retain(|&s| s < first_killed);
        self.sq.retain(|&s| s < first_killed);
        self.fetch_q.clear();
        self.fetch_halted = false;
    }

    // ------------------------------------------------------------------
    // Commit stage
    // ------------------------------------------------------------------

    fn commit_stage(&mut self, mem: &mut MemorySystem) {
        for _ in 0..self.cfg.width {
            let Some(head) = self.rob.front() else { break };
            // An entry can be `done` yet still owe a deferred action that
            // must run in `resolve_stage` first (same-cycle multi-commit
            // could otherwise retire it together with its taint producer).
            if head.fp_failed || head.pending_squash {
                break;
            }
            if !head.done {
                // Figure 7 accounting: head blocked awaiting validation.
                if head.obl.as_ref().is_some_and(OblLdFsm::awaiting_validation) {
                    self.stats.obl.validation_stall_cycles += 1;
                }
                break;
            }
            let head = self.rob.pop_front().expect("non-empty");
            self.progressed = true;
            self.stats.committed += 1;
            if let Some(log) = self.commit_pcs.as_mut() {
                log.push(head.pc);
            }
            if let Some(t) = self.trace.as_mut() {
                t.commit(head.seq, self.now);
            }
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(self.now, head.seq, head.pc, ObsEvent::Commit);
            }
            match head.inst.class() {
                OpClass::Halt => {
                    self.halted = true;
                    return;
                }
                OpClass::Store => {
                    self.stats.committed_stores += 1;
                    let addr = head.addr.expect("store address computed");
                    let data = head.store_data.expect("store data computed");
                    mem.store(self.id, addr, data, head.width_bytes, self.now);
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.emit(
                            self.now,
                            head.seq,
                            head.pc,
                            ObsEvent::MemAccess { line: addr / 64, op: MemOp::Store, tainted: false },
                        );
                    }
                    self.sq.retain(|&s| s != head.seq);
                }
                OpClass::Load => {
                    self.stats.committed_loads += 1;
                    self.lq.retain(|&s| s != head.seq);
                }
                _ => {}
            }
            if let Some(old) = head.old_pdst {
                self.regs.release(old);
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue stage
    // ------------------------------------------------------------------

    fn fu_for(class: OpClass) -> fn(&mut FuBudget) -> &mut u32 {
        match class {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump => |b| &mut b.alu,
            OpClass::IntMul | OpClass::IntDiv => |b| &mut b.muldiv,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => |b| &mut b.fp,
            OpClass::Load | OpClass::Store => |b| &mut b.mem,
            OpClass::Nop | OpClass::Halt => |b| &mut b.alu,
        }
    }

    /// Claims a non-pipelined unit for `latency` cycles; `true` iff one
    /// was free this cycle.
    fn claim_unit(busy: &mut [Cycle], now: Cycle, latency: Cycle) -> bool {
        match busy.iter_mut().find(|b| **b <= now) {
            Some(slot) => {
                *slot = now + latency;
                true
            }
            None => false,
        }
    }

    fn issue_stage(&mut self, mem: &mut MemorySystem) {
        let mut budget = FuBudget {
            alu: self.cfg.fus.int_alu,
            muldiv: self.cfg.fus.int_muldiv,
            fp: self.cfg.fus.fp,
            mem: self.cfg.fus.mem_ports,
        };
        let mut issued_count = 0usize;
        let iq_before = self.iq.len();

        // Walk the issue queue by index, compacting in place: `kept` is
        // the write cursor for entries that stay queued. No snapshot
        // clone, no issued-list membership scans.
        let mut kept = 0usize;
        let mut idx = 0usize;
        while idx < self.iq.len() {
            let seq = self.iq[idx];
            idx += 1;
            if issued_count >= self.cfg.width {
                // Width exhausted: everything else stays queued.
                self.iq[kept] = seq;
                kept += 1;
                continue;
            }
            let Some(e) = self.ent(seq) else {
                continue; // squashed stragglers leave the queue
            };
            if e.status != Status::Waiting {
                continue; // already executing/done: leave the queue
            }
            // Source readiness.
            let ready = e.psrcs.iter().flatten().all(|p| self.regs.is_ready(*p));
            let mut issue_ok = false;
            if ready {
                let class = e.inst.class();
                let fu = Self::fu_for(class);
                if *fu(&mut budget) != 0 {
                    issue_ok = match class {
                        OpClass::Load => self.try_issue_load(mem, seq),
                        OpClass::Store => {
                            self.issue_store(seq);
                            true
                        }
                        OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => {
                            self.try_issue_fp_transmit(seq)
                        }
                        _ => self.issue_simple(seq),
                    };
                    if issue_ok {
                        *fu(&mut budget) -= 1;
                        issued_count += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.issue(seq, self.now);
                        }
                        if self.obs.is_some() {
                            let pc = self.ent(seq).map_or(0, |e| e.pc);
                            if let Some(o) = self.obs.as_deref_mut() {
                                o.emit(self.now, seq, pc, ObsEvent::Issue);
                            }
                        }
                    }
                }
            }
            if !issue_ok {
                self.iq[kept] = seq;
                kept += 1;
            }
        }
        self.iq.truncate(kept);
        // Every issue (and every straggler dropped) shrinks the queue;
        // retries that stay queued do not.
        if self.iq.len() != iq_before {
            self.progressed = true;
        }
    }

    fn src_value(&self, e: &DynInst, slot: usize) -> u64 {
        e.psrcs[slot].map_or(0, |p| self.regs.value(p))
    }

    fn issue_simple(&mut self, seq: u64) -> bool {
        let e = self.ent(seq).expect("live");
        let pc = e.pc;
        let inst = e.inst;
        let s0 = self.src_value(e, 0);
        let s1 = self.src_value(e, 1);
        let f0 = f64::from_bits(self.src_value(e, 2));
        let f1 = f64::from_bits(self.src_value(e, 3));
        let lat = &self.cfg.lat;

        let (value, latency, outcome) = match inst {
            Instruction::Alu { op, .. } => (Some(op.eval(s0, s1)), self.alu_latency(op), None),
            Instruction::AluImm { op, imm, .. } => {
                (Some(op.eval(s0, imm as u64)), self.alu_latency(op), None)
            }
            Instruction::Li { imm, .. } => (Some(imm as u64), lat.int_alu, None),
            Instruction::Branch { cond, target, .. } => {
                let taken = cond.eval(s0, s1);
                let next = if taken { target } else { pc + 1 };
                (None, lat.int_alu, Some((taken, next)))
            }
            Instruction::Jal { target, .. } => (Some(pc + 1), lat.int_alu, Some((true, target))),
            Instruction::Jalr { offset, .. } => {
                (Some(pc + 1), lat.int_alu, Some((true, s0.wrapping_add(offset as u64))))
            }
            Instruction::Fpu { op, .. } => {
                // Non-transmit FP (add/sub) — always data-oblivious timing.
                (Some(op.eval(f0, f1).to_bits()), lat.fp_add, None)
            }
            Instruction::FMvToInt { .. } => (Some(self.src_value(e, 2)), lat.int_alu, None),
            Instruction::FMvFromInt { .. } => (Some(s0), lat.int_alu, None),
            Instruction::Nop | Instruction::Halt => (None, lat.int_alu, None),
            Instruction::Load { .. }
            | Instruction::Store { .. }
            | Instruction::FLoad { .. }
            | Instruction::FStore { .. } => unreachable!("memory ops use their own paths"),
        };

        // Long-latency integer ops occupy their (non-pipelined) unit.
        if matches!(inst.class(), OpClass::IntMul | OpClass::IntDiv)
            && !Self::claim_unit(&mut self.muldiv_busy, self.now, latency)
        {
            return false; // unit busy: stay in the issue queue, retry
        }
        let e = self.ent_mut(seq).expect("live");
        e.status = Status::Executing;
        e.outcome = outcome;
        self.schedule(self.now + latency, seq, EvKind::Exec { value });
        true
    }

    fn alu_latency(&self, op: sdo_isa::AluOp) -> Cycle {
        if op.is_mul() {
            self.cfg.lat.int_mul
        } else if op.is_div() {
            self.cfg.lat.int_div
        } else {
            self.cfg.lat.int_alu
        }
    }

    /// Whether the op ties up its FP unit for its whole latency: divides
    /// and square roots always; multiplies only on the (subnormal) slow
    /// microcoded path. Adds and fast multiplies are fully pipelined.
    fn fp_unit_nonpipelined(&self, op: FpuOp, slow: bool) -> bool {
        matches!(op, FpuOp::Div | FpuOp::Sqrt) || slow
    }

    fn fp_latency(&self, op: FpuOp, slow: bool) -> Cycle {
        let base = match op {
            FpuOp::Add | FpuOp::Sub => self.cfg.lat.fp_add,
            FpuOp::Mul => self.cfg.lat.fp_mul,
            FpuOp::Div => self.cfg.lat.fp_div,
            FpuOp::Sqrt => self.cfg.lat.fp_sqrt,
        };
        if slow {
            base + self.cfg.lat.fp_subnormal_penalty
        } else {
            base
        }
    }

    /// Computes an FP transmit op's true value and (class-dependent)
    /// latency; `force_slow` charges the subnormal path.
    fn exec_fp(&mut self, seq: u64, force_slow: bool) -> (u64, Cycle) {
        let e = self.ent(seq).expect("live");
        let Instruction::Fpu { op, .. } = e.inst else { unreachable!("fp transmit") };
        let a = f64::from_bits(self.src_value(e, 2));
        let b = f64::from_bits(self.src_value(e, 3));
        let slow = force_slow
            || a.is_subnormal()
            || (op != FpuOp::Sqrt && b.is_subnormal());
        (op.eval(a, b).to_bits(), self.fp_latency(op, slow))
    }

    fn try_issue_fp_transmit(&mut self, seq: u64) -> bool {
        let tainted = self.srcs_tainted(seq);
        let protect = self.sec.protection.protects_fp();
        match (self.sec.protection, tainted && protect) {
            (Protection::Sdo(_), true) => {
                // FP SDO: execute the predict-normal DO variant (fast
                // latency and fast-path unit occupancy regardless of
                // operands — data-oblivious).
                let e = self.ent(seq).expect("live");
                let Instruction::Fpu { op, .. } = e.inst else { unreachable!() };
                let a = f64::from_bits(self.src_value(e, 2));
                let b = f64::from_bits(self.src_value(e, 3));
                let lat = self.fp_latency(op, false);
                if self.fp_unit_nonpipelined(op, false)
                    && !Self::claim_unit(&mut self.fp_busy, self.now, lat)
                {
                    return false;
                }
                let r: DoResult<f64> = fp_do_execute(op, a, b);
                self.stats.fp_sdo_issued += 1;
                let (value, failed) = match r.presult {
                    Some(v) => (v.to_bits(), false),
                    None => (0u64, true),
                };
                let pc = self.ent(seq).expect("live").pc;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.emit(self.now, seq, pc, ObsEvent::FpTransmit { tainted: true, oblivious: true });
                }
                let e = self.ent_mut(seq).expect("live");
                e.status = Status::Executing;
                e.fp_failed = failed;
                self.schedule(self.now + lat, seq, EvKind::Exec { value: Some(value) });
                true
            }
            (Protection::Stt { .. }, true) => {
                // Delay until operands untaint.
                let e = self.ent_mut(seq).expect("live");
                if !e.delay_counted {
                    e.delay_counted = true;
                    self.stats.delayed_fp += 1;
                }
                false
            }
            _ => {
                // Unsafe, STT{ld}, or untainted operands: execute with the
                // operand-dependent latency AND unit occupancy (the
                // covert channel the configurations above close).
                let e = self.ent(seq).expect("live");
                let Instruction::Fpu { op, .. } = e.inst else { unreachable!() };
                let a = f64::from_bits(self.src_value(e, 2));
                let slow = a.is_subnormal()
                    || (op != FpuOp::Sqrt && f64::from_bits(self.src_value(e, 3)).is_subnormal());
                let (value, lat) = self.exec_fp(seq, false);
                if self.fp_unit_nonpipelined(op, slow)
                    && !Self::claim_unit(&mut self.fp_busy, self.now, lat)
                {
                    return false;
                }
                let pc = self.ent(seq).expect("live").pc;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.emit(self.now, seq, pc, ObsEvent::FpTransmit { tainted, oblivious: false });
                }
                let e = self.ent_mut(seq).expect("live");
                e.status = Status::Executing;
                self.schedule(self.now + lat, seq, EvKind::Exec { value: Some(value) });
                true
            }
        }
    }

    fn issue_store(&mut self, seq: u64) {
        let e = self.ent(seq).expect("live");
        let (base, offset, width) = e.inst.mem_operands().expect("store");
        let _ = base;
        let addr = self.src_value(e, if e.inst.int_srcs()[1].is_some() { 1 } else { 0 })
            .wrapping_add(offset as u64);
        // Data: integer stores read src slot 0; FP stores read fp slot 2.
        let data = match e.inst {
            Instruction::Store { .. } => self.src_value(e, 0),
            Instruction::FStore { .. } => self.src_value(e, 2),
            _ => unreachable!(),
        };
        let e = self.ent_mut(seq).expect("live");
        e.addr = Some(addr);
        e.store_data = Some(data);
        e.width_bytes = width.bytes();
        e.status = Status::Executing;
        self.schedule(self.now + 1, seq, EvKind::Exec { value: None });
    }

    /// Store-queue search for an older store overlapping `addr`.
    /// `Ok(Some(value))`: full-cover forward. `Ok(None)`: no overlap.
    /// `Err(())`: must wait (unknown older address or partial overlap).
    fn sq_lookup(&self, seq: u64, addr: u64, width: u64) -> Result<Option<u64>, ()> {
        for &s_seq in self.sq.iter().rev() {
            if s_seq >= seq {
                continue;
            }
            let Some(s) = self.ent(s_seq) else { continue };
            let Some(s_addr) = s.addr else { return Err(()) };
            let s_width = s.width_bytes;
            let overlap = addr < s_addr + s_width && s_addr < addr + width;
            if !overlap {
                continue;
            }
            let covers = s_addr <= addr && addr + width <= s_addr + s_width;
            if !covers || s.store_data.is_none() {
                return Err(());
            }
            let shift = 8 * (addr - s_addr);
            let data = s.store_data.expect("checked") >> shift;
            return Ok(Some(data));
        }
        // Any older store with an unknown address blocks (conservative
        // memory-dependence policy, see DESIGN.md).
        for &s_seq in &self.sq {
            if s_seq < seq && self.ent(s_seq).is_some_and(|s| s.addr.is_none()) {
                return Err(());
            }
        }
        Ok(None)
    }

    fn try_issue_load(&mut self, mem: &mut MemorySystem, seq: u64) -> bool {
        let e = self.ent(seq).expect("live");
        let (_, offset, width) = e.inst.mem_operands().expect("load");
        let addr = self.src_value(e, 0).wrapping_add(offset as u64);
        let width_bytes = width.bytes();
        {
            let e = self.ent_mut(seq).expect("live");
            e.addr = Some(addr);
            e.width_bytes = width_bytes;
        }

        // Memory ordering / store-to-load forwarding.
        let forwarded = match self.sq_lookup(seq, addr, width_bytes) {
            Err(()) => return false, // retry next cycle
            Ok(f) => f,
        };

        let tainted = self.addr_operand_tainted(seq);
        match self.sec.protection {
            Protection::Unsafe => {
                self.issue_normal_load(mem, seq, addr, forwarded);
                true
            }
            Protection::Stt { .. } => {
                if tainted {
                    self.note_delayed(seq);
                    false
                } else {
                    self.finish_delay_accounting(seq);
                    self.issue_normal_load(mem, seq, addr, forwarded);
                    true
                }
            }
            Protection::Sdo(sdo) => {
                if !tainted {
                    self.finish_delay_accounting(seq);
                    self.issue_normal_load(mem, seq, addr, forwarded);
                    return true;
                }
                // Predict a level from the (public) PC.
                let oracle = mem.residency(self.id, addr);
                let mut level = self.predictor.predict(self.ent(seq).expect("live").pc, oracle);
                if level == CacheLevel::Dram && !sdo.allow_dram_prediction {
                    level = CacheLevel::L3;
                }
                if level == CacheLevel::Dram {
                    // Revert to STT delay (Section VI-B).
                    let now = self.now;
                    let e = self.ent_mut(seq).expect("live");
                    let newly = !e.delay_counted;
                    e.delay_counted = true;
                    if e.delayed_since.is_none() {
                        e.delayed_since = Some(now);
                    }
                    if newly {
                        self.stats.obl.dram_predictions += 1;
                        self.stats.delayed_loads += 1;
                    }
                    return false;
                }
                match mem.obl_lookup(self.id, addr, level, self.now) {
                    Err(OblReject::MshrFull) => {
                        self.stats.obl.mshr_retries += 1;
                        false
                    }
                    Ok(lookup) => {
                        self.stats.obl.issued += 1;
                        if self.obs.is_some() {
                            let pc = self.ent(seq).expect("live").pc;
                            let depth = level.depth();
                            if let Some(o) = self.obs.as_deref_mut() {
                                o.emit(self.now, seq, pc, ObsEvent::OblProbe { level: depth });
                            }
                        }
                        if lookup.success() {
                            self.stats.obl.success += 1;
                        } else {
                            self.stats.obl.fail += 1;
                            if !lookup.tlb_hit {
                                self.stats.obl.tlb_probe_fails += 1;
                            }
                        }
                        if let Some(fwd) = forwarded {
                            // SQ forwarding: the lookup ran for timing; the
                            // load completes from the SQ at B, no
                            // validation needed (Section V-C3).
                            self.stats.obl.sq_forwarded += 1;
                            let e = self.ent_mut(seq).expect("live");
                            e.sq_forwarded = true;
                            e.status = Status::Executing;
                            self.schedule(lookup.complete_at, seq, EvKind::LoadDone { value: fwd });
                            return true;
                        }
                        let pc = self.ent(seq).expect("live").pc;
                        let exposure_eligible = self.exposure_condition(seq);
                        let fsm = OblLdFsm::new(pc, level, exposure_eligible, sdo.early_forward);
                        let e = self.ent_mut(seq).expect("live");
                        e.obl = Some(fsm);
                        e.status = Status::Executing;
                        for r in &lookup.responses {
                            self.schedule(
                                r.at,
                                seq,
                                EvKind::OblResp {
                                    level: r.level,
                                    hit: r.hit,
                                    value: r.hit.then(|| lookup.value.expect("hit has data")),
                                },
                            );
                        }
                        true
                    }
                }
            }
        }
    }

    /// Approximation of InvisiSpec's exposure condition: the load cannot
    /// be reordered with older memory operations if none are in flight.
    fn exposure_condition(&self, seq: u64) -> bool {
        let older_store = self.sq.iter().any(|&s| s < seq);
        let older_load_incomplete = self
            .lq
            .iter()
            .filter(|&&l| l < seq)
            .any(|&l| self.ent(l).is_some_and(|e| !e.done));
        !older_store && !older_load_incomplete
    }

    fn note_delayed(&mut self, seq: u64) {
        let now = self.now;
        let e = self.ent_mut(seq).expect("live");
        let newly = !e.delay_counted;
        e.delay_counted = true;
        if e.delayed_since.is_none() {
            e.delayed_since = Some(now);
        }
        if newly {
            self.stats.delayed_loads += 1;
        }
    }

    fn finish_delay_accounting(&mut self, seq: u64) {
        let e = self.ent_mut(seq).expect("live");
        if let Some(since) = e.delayed_since.take() {
            self.stats.delay_cycles += self.now - since;
        }
    }

    fn issue_normal_load(&mut self, mem: &mut MemorySystem, seq: u64, addr: u64, forwarded: Option<u64>) {
        let e = self.ent_mut(seq).expect("live");
        e.status = Status::Executing;
        let was_dram_predicted = e.delay_counted && matches!(self.sec.protection, Protection::Sdo(_));
        if let Some(value) = forwarded {
            let e = self.ent_mut(seq).expect("live");
            e.sq_forwarded = true;
            // Store-to-load forwarding latency ≈ L1 hit.
            let at = self.now + self.cfg.lat.int_alu + 1;
            self.schedule(at, seq, EvKind::LoadDone { value });
            return;
        }
        let res = mem.load(self.id, addr, self.now);
        if self.obs.is_some() {
            let pc = self.ent(seq).expect("live").pc;
            let tainted = self.addr_operand_tainted(seq);
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(
                    self.now,
                    seq,
                    pc,
                    ObsEvent::MemAccess { line: addr / 64, op: MemOp::Load, tainted },
                );
            }
        }
        self.schedule(res.complete_at, seq, EvKind::LoadDone { value: res.value });
        if was_dram_predicted {
            // The location predictor said DRAM and the load reverted to
            // delayed execution; it is untainted now, so training with the
            // observed level is safe — and necessary, or the predictor
            // would never escape a DRAM rut once the data becomes
            // cache-resident.
            let pc = self.ent(seq).expect("live").pc;
            if self.obs.is_some() {
                let tainted = self.addr_operand_tainted(seq);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.emit(self.now, seq, pc, ObsEvent::PredictorUpdate { tainted });
                }
            }
            self.predictor.update(pc, res.served_by.level());
            self.stats.record_prediction(CacheLevel::Dram.depth(), res.served_by.level().depth());
        }
        let _: ServedBy = res.served_by;
    }

    // ------------------------------------------------------------------
    // Dispatch (rename) stage
    // ------------------------------------------------------------------

    fn dispatch_stage(&mut self) {
        for _ in 0..self.cfg.width {
            let Some(front) = self.fetch_q.front() else { break };
            if front.ready_at > self.now {
                break;
            }
            if self.rob.len() >= self.cfg.rob_entries || self.iq.len() >= self.cfg.iq_entries {
                break;
            }
            let inst = front.inst;
            if inst.is_load() && self.lq.len() >= self.cfg.lq_entries {
                break;
            }
            if inst.is_store() && self.sq.len() >= self.cfg.sq_entries {
                break;
            }
            let needs_int = inst.int_dst().is_some();
            let needs_fp = inst.fp_dst().is_some();
            if (needs_int && self.regs.free_count(RegClass::Int) == 0)
                || (needs_fp && self.regs.free_count(RegClass::Fp) == 0)
            {
                break;
            }

            let f = self.fetch_q.pop_front().expect("non-empty");
            self.progressed = true;
            let seq = self.next_seq;
            self.next_seq += 1;
            let rat_snap = self.regs.snapshot();

            // Rename sources: integer in slots 0-1, FP in slots 2-3.
            let mut psrcs = [None; 4];
            let int_srcs = inst.int_srcs();
            for (i, r) in int_srcs.iter().enumerate() {
                psrcs[i] = r.map(|r| self.regs.lookup_int(r));
            }
            let fp_srcs = inst.fp_srcs();
            for (i, r) in fp_srcs.iter().enumerate() {
                psrcs[2 + i] = r.map(|r| self.regs.lookup_fp(r));
            }

            // YRoT: max over sources, plus self for loads.
            let mut yrot: Option<u64> =
                psrcs.iter().flatten().filter_map(|p| self.regs.yrot(*p)).max();
            if inst.is_load() {
                yrot = Some(yrot.map_or(seq, |y| y.max(seq)));
            }

            // Rename destination.
            let (pdst, old_pdst) = if let Some(d) = inst.int_dst() {
                let (n, o) = self.regs.alloc(RegClass::Int, d.index()).expect("checked free");
                (Some(n), Some(o))
            } else if let Some(d) = inst.fp_dst() {
                let (n, o) = self.regs.alloc(RegClass::Fp, d.index()).expect("checked free");
                (Some(n), Some(o))
            } else {
                (None, None)
            };
            if let Some(p) = pdst {
                self.regs.set_yrot(p, yrot);
            }

            let class = inst.class();
            let trivially_done = matches!(class, OpClass::Nop | OpClass::Halt);
            let entry = DynInst {
                seq,
                pc: f.pc,
                inst,
                status: if trivially_done { Status::Done } else { Status::Waiting },
                done: trivially_done,
                safe: false,
                rat_snap,
                pdst,
                old_pdst,
                psrcs,
                pred_taken: f.pred_taken,
                pred_target: f.pred_target,
                outcome: None,
                resolution_applied: !(inst.is_cond_branch() || inst.is_indirect()),
                addr: None,
                store_data: None,
                width_bytes: 8,
                delayed_since: None,
                delay_counted: false,
                obl: None,
                obl_safe_sent: false,
                obl_first_hit_at: None,
                sq_forwarded: false,
                pending_squash: false,
                fp_failed: false,
            };
            if let Some(t) = self.trace.as_mut() {
                t.dispatch(seq, entry.pc, entry.inst, self.now);
            }
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(self.now, seq, entry.pc, ObsEvent::Dispatch);
            }
            self.rob.push_back(entry);
            if !trivially_done {
                self.iq.push(seq);
            }
            if inst.is_load() {
                self.lq.push(seq);
            }
            if inst.is_store() {
                self.sq.push(seq);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch stage
    // ------------------------------------------------------------------

    fn fetch_stage(&mut self, mem: &mut MemorySystem) {
        if self.fetch_halted || self.now < self.fetch_stall_until {
            return;
        }
        let cap = self.cfg.width * (self.cfg.frontend_latency as usize + 2);
        for _ in 0..self.cfg.width {
            if self.fetch_q.len() >= cap {
                break;
            }
            // Every path below mutates: an icache probe/stall, a queue
            // push, or the fetch-halt latch.
            self.progressed = true;
            let pc = self.fetch_pc;
            // Instruction-cache timing: one check per text line (8
            // instructions); a miss stalls fetch until the line arrives.
            let text_line = sdo_mem::line_of(ITEXT_BASE + pc * 8);
            if self.last_fetch_line != Some(text_line) {
                let ready = mem.ifetch(self.id, text_line, self.now);
                self.last_fetch_line = Some(text_line);
                if ready > self.now {
                    self.fetch_stall_until = ready;
                    break;
                }
            }
            let inst = self.program.fetch(pc);
            self.stats.fetched += 1;
            let ready_at = self.now + self.cfg.frontend_latency;
            let mut pred_taken = false;
            let mut pred_target = pc + 1;
            let mut redirect = false;

            match inst {
                Instruction::Branch { target, .. } => {
                    pred_taken = self.bp.predict(pc);
                    if pred_taken {
                        pred_target = target;
                        redirect = true;
                    }
                }
                Instruction::Jal { dst, target } => {
                    pred_target = target;
                    pred_taken = true;
                    redirect = true;
                    if !dst.is_zero() {
                        self.ras.push(pc + 1);
                    }
                }
                Instruction::Jalr { dst, base, .. } => {
                    pred_taken = true;
                    redirect = true;
                    let is_return = dst.is_zero() && base == Reg::new(31);
                    pred_target = if is_return {
                        self.ras.pop().or_else(|| self.btb.lookup(pc)).unwrap_or(pc + 1)
                    } else {
                        self.btb.lookup(pc).unwrap_or(pc + 1)
                    };
                    if !dst.is_zero() {
                        self.ras.push(pc + 1);
                    }
                }
                Instruction::Halt => {
                    self.fetch_q.push_back(Fetched {
                        pc,
                        inst,
                        pred_taken: false,
                        pred_target: pc + 1,
                        ready_at,
                    });
                    self.fetch_halted = true;
                    return;
                }
                _ => {}
            }

            self.fetch_q.push_back(Fetched { pc, inst, pred_taken, pred_target, ready_at });
            self.fetch_pc = pred_target;
            if redirect {
                break; // one taken control transfer per fetch cycle
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SdoConfig;
    use sdo_isa::{Assembler, FReg, Interpreter, Reg};
    use sdo_mem::MemConfig;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }
    fn fr(i: u8) -> FReg {
        FReg::new(i)
    }

    fn all_configs() -> Vec<SecurityConfig> {
        let mut v = vec![SecurityConfig::unsafe_baseline()];
        for attack in AttackModel::ALL {
            for fp in [false, true] {
                v.push(SecurityConfig { protection: Protection::Stt { fp_transmitters: fp }, attack });
            }
            for kind in [
                PredictorKind::Static(CacheLevel::L1),
                PredictorKind::Static(CacheLevel::L2),
                PredictorKind::Static(CacheLevel::L3),
                PredictorKind::Hybrid,
                PredictorKind::Perfect,
            ] {
                v.push(SecurityConfig {
                    protection: Protection::Sdo(SdoConfig::with_predictor(kind)),
                    attack,
                });
            }
        }
        v
    }

    /// Runs `prog` under `sec` and returns the core (halted).
    fn run_with(prog: &Program, sec: SecurityConfig) -> (Core, MemorySystem) {
        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        mem.load_image(prog.data());
        let mut core = Core::new(0, CoreConfig::table_i(), sec, prog.clone());
        core.run(&mut mem, 2_000_000).expect("program should halt");
        (core, mem)
    }

    /// Differentially checks committed state against the golden model for
    /// every protection configuration.
    fn check_all_configs(prog: &Program) {
        let mut golden = Interpreter::new(prog);
        golden.run(5_000_000).expect("golden halts");
        for sec in all_configs() {
            let (core, mem) = run_with(prog, sec);
            assert_eq!(
                core.arch_int(),
                golden.int_regs(),
                "int state mismatch under {sec:?} for {}",
                prog.name()
            );
            assert_eq!(
                core.arch_fp(),
                golden.fp_regs(),
                "fp state mismatch under {sec:?} for {}",
                prog.name()
            );
            for (addr, byte) in golden.mem_snapshot() {
                assert_eq!(
                    mem.backing().read_byte(addr),
                    byte,
                    "memory mismatch at {addr:#x} under {sec:?}"
                );
            }
        }
    }

    #[test]
    fn alu_loop_matches_golden_everywhere() {
        let mut asm = Assembler::named("alu_loop");
        let (n, acc) = (r(1), r(2));
        asm.li(n, 50);
        let top = asm.here();
        asm.add(acc, acc, n);
        asm.muli(r(3), r(2), 3);
        asm.xor(r(4), r(3), n);
        asm.addi(n, n, -1);
        asm.bne(n, Reg::ZERO, top);
        asm.halt();
        check_all_configs(&asm.finish().unwrap());
    }

    #[test]
    fn load_store_program_matches_golden_everywhere() {
        let mut asm = Assembler::named("ldst");
        let base = r(1);
        asm.li(base, 0x1000);
        // Write then read back a small table, summing.
        let i = r(2);
        let sum = r(3);
        let tmp = r(4);
        asm.li(i, 8);
        let top = asm.here();
        asm.slli(tmp, i, 3);
        asm.add(tmp, tmp, base);
        asm.st(i, tmp, 0);
        asm.ld(r(5), tmp, 0);
        asm.add(sum, sum, r(5));
        asm.addi(i, i, -1);
        asm.bne(i, Reg::ZERO, top);
        asm.halt();
        check_all_configs(&asm.finish().unwrap());
    }

    /// The classic Spectre-shaped loop: every iteration loads a *bound*
    /// from a large, cache-hostile array and branches on it; while that
    /// slow branch is unresolved, a fast speculative access-load and a
    /// dependent transmit-load execute in its shadow. The access-load's
    /// output is tainted (it is speculative), so the dependent load has a
    /// tainted address and must delay (STT) or issue as an Obl-Ld (SDO).
    fn spec_window_program() -> Program {
        let mut asm = Assembler::named("spec_window");
        // Bounds array: one line per iteration, too large for the L1.
        let bounds = 0x10_0000u64;
        let iters = 150u64;
        // (values are all zero == bound check always passes)
        // Pointer ring, L1-resident after the first lap.
        let ring_base = 0x2000u64;
        let ring = 8u64;
        for k in 0..ring {
            asm.data_mut().set_word(ring_base + k * 64, ring_base + ((k + 1) % ring) * 64);
        }
        let (ptr, val, bptr, bound) = (r(1), r(2), r(3), r(4));
        asm.li(ptr, ring_base as i64);
        asm.li(bptr, bounds as i64);
        let iter = r(10);
        asm.li(iter, iters as i64);
        let top = asm.here();
        asm.ld(bound, bptr, 0); // slow: streams through 150 lines
        let skip = asm.label();
        asm.bne(bound, Reg::ZERO, skip); // unresolved while bound in flight
        asm.ld(val, ptr, 0); // access: output tainted while speculative
        asm.ld(ptr, val, 0); // transmitter: tainted address
        asm.add(r(7), r(7), val);
        asm.bind(skip);
        asm.addi(bptr, bptr, 512); // next bound line (stride 8 lines)
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn spec_window_matches_golden_everywhere() {
        check_all_configs(&spec_window_program());
    }

    /// Runs `prog` under `sec` with fast-forward toggled and occupancy
    /// observability on, so the comparison covers the bulk-sampled
    /// histograms too.
    fn run_ff(prog: &Program, sec: SecurityConfig, ff: bool) -> (Core, MemorySystem) {
        let mem_cfg = MemConfig::table_i();
        let mut mem = MemorySystem::new(mem_cfg, 1);
        mem.load_image(prog.data());
        let mut core = Core::new(0, CoreConfig::table_i(), sec, prog.clone());
        core.enable_obs(crate::ObsConfig::occupancy(), mem_cfg.l1.mshrs as usize);
        core.set_fast_forward(ff);
        core.run(&mut mem, 2_000_000).expect("program should halt");
        (core, mem)
    }

    /// The cycle-exactness invariant (DESIGN.md "Quiescence
    /// fast-forward"): with skipping on, every observable — final cycle,
    /// core statistics, architectural state, memory statistics, and the
    /// per-cycle occupancy histograms — must be identical to the
    /// cycle-stepped run, under every protection configuration.
    #[test]
    fn fast_forward_is_cycle_exact_everywhere() {
        let prog = spec_window_program();
        let mut total_skipped = 0;
        for sec in all_configs() {
            let (skip, skip_mem) = run_ff(&prog, sec, true);
            let (step, step_mem) = run_ff(&prog, sec, false);
            assert_eq!(step.skipped_cycles(), 0, "stepped run must not skip");
            assert_eq!(skip.now(), step.now(), "cycle count diverged under {sec:?}");
            assert_eq!(skip.stats(), step.stats(), "core stats diverged under {sec:?}");
            assert_eq!(skip.arch_int(), step.arch_int(), "int state diverged under {sec:?}");
            assert_eq!(skip.arch_fp(), step.arch_fp(), "fp state diverged under {sec:?}");
            assert_eq!(skip_mem.stats(), step_mem.stats(), "mem stats diverged under {sec:?}");
            assert_eq!(skip.obs(), step.obs(), "occupancy histograms diverged under {sec:?}");
            total_skipped += skip.skipped_cycles();
        }
        assert!(
            total_skipped > 0,
            "the spec-window program must exercise at least one quiescent skip"
        );
    }

    /// Fast-forward must actually engage on a memory-bound program: the
    /// spec-window kernel streams bound lines from DRAM, so a large
    /// share of its cycles are quiescent stalls.
    #[test]
    fn fast_forward_skips_dram_stalls() {
        let prog = spec_window_program();
        let (core, _) = run_ff(&prog, SecurityConfig::unsafe_baseline(), true);
        assert!(
            core.skipped_cycles() * 4 >= core.now(),
            "expected >=25% of cycles skipped on a DRAM-bound run, got {} of {}",
            core.skipped_cycles(),
            core.now()
        );
    }

    /// Regression for the Futuristic visibility approximation documented
    /// in `update_visibility`: once an Obl-Ld passes the visibility
    /// point in a *single-core* run, its validation can no longer
    /// mismatch — the value it forwarded is the value memory holds (own
    /// stores are handled by SQ forwarding, and there is no other core
    /// to race with). So no validation-mismatch squash may ever fire.
    #[test]
    fn futuristic_visibility_point_never_squashes_on_validation_single_core() {
        let prog = spec_window_program();
        let mut validations = 0;
        for kind in [
            PredictorKind::Static(CacheLevel::L1),
            PredictorKind::Static(CacheLevel::L2),
            PredictorKind::Static(CacheLevel::L3),
            PredictorKind::Hybrid,
            PredictorKind::Perfect,
        ] {
            let sec = SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(kind)),
                attack: AttackModel::Futuristic,
            };
            let (core, _) = run_with(&prog, sec);
            validations += core.stats().obl.validations;
            assert_eq!(
                core.stats().squashes.validation,
                0,
                "validation-mismatch squash after the visibility point under {kind:?}"
            );
        }
        assert!(validations > 0, "the kernel must actually exercise validations");
    }

    #[test]
    fn stt_delays_tainted_loads_and_costs_cycles() {
        let prog = spec_window_program();
        let (unsafe_core, _) = run_with(&prog, SecurityConfig::unsafe_baseline());
        let (stt_core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Spectre,
            },
        );
        assert!(stt_core.stats().delayed_loads > 0, "tainted loads must be delayed");
        assert_eq!(unsafe_core.stats().delayed_loads, 0);
        assert!(
            stt_core.stats().cycles > unsafe_core.stats().cycles,
            "STT ({}) should be slower than Unsafe ({})",
            stt_core.stats().cycles,
            unsafe_core.stats().cycles
        );
    }

    #[test]
    fn sdo_issues_obl_loads_and_beats_stt() {
        let prog = spec_window_program();
        let (stt_core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Spectre,
            },
        );
        let (sdo_core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Perfect)),
                attack: AttackModel::Spectre,
            },
        );
        assert!(sdo_core.stats().obl.issued > 0, "SDO must issue Obl-Lds");
        assert!(
            sdo_core.stats().cycles <= stt_core.stats().cycles,
            "SDO+Perfect ({}) should not be slower than STT ({})",
            sdo_core.stats().cycles,
            stt_core.stats().cycles
        );
    }

    #[test]
    fn static_l1_mispredictions_squash() {
        // Footprint larger than L1 so Static L1 predictions fail for the
        // tainted loads; fails surface as obl_fail squashes.
        let mut asm = Assembler::named("l1_hostile");
        let table = 0x10_0000u64;
        let n = 512u64; // 512 lines x 64B = 32KB+ footprint with stride 64
        for k in 0..n {
            asm.data_mut().set_word(table + k * 64, (k + 1) % n * 64 + table);
        }
        let (ptr, bptr, bound) = (r(1), r(3), r(4));
        asm.li(ptr, table as i64);
        asm.li(bptr, 0x40_0000);
        let iter = r(10);
        asm.li(iter, 600);
        let top = asm.here();
        asm.ld(bound, bptr, 0); // slow bound load opens the window
        let skip = asm.label();
        asm.bne(bound, Reg::ZERO, skip); // never taken
        asm.ld(r(6), ptr, 0); // access: output tainted while speculative
        asm.ld(r(7), r(6), 0); // tainted transmitter over a >L1 footprint
        asm.bind(skip);
        asm.ld(ptr, ptr, 0); // untainted ring walk (next line)
        asm.addi(bptr, bptr, 512);
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        let (core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Static(
                    CacheLevel::L1,
                ))),
                attack: AttackModel::Futuristic,
            },
        );
        assert!(core.stats().obl.fail > 0, "cold L1 predictions must fail");
        assert!(
            core.stats().squashes.obl_fail > 0,
            "futuristic model: fails discovered after forward squash"
        );
    }

    fn fp_program(subnormal: bool) -> Program {
        let mut asm = Assembler::named("fp_chain");
        let x = if subnormal { f64::MIN_POSITIVE / 16.0 } else { 1.5 };
        asm.data_mut().set_f64(0x100, x);
        asm.data_mut().set_f64(0x108, 2.0);
        let (bptr, bound) = (r(1), r(2));
        let bounds = 0x10_0000u64;
        asm.li(bptr, bounds as i64);
        asm.li(r(8), 0x100);
        let iter = r(10);
        asm.li(iter, 40);
        let top = asm.here();
        asm.ld(bound, bptr, 0); // slow bound load opens the window
        let skip = asm.label();
        asm.bne(bound, Reg::ZERO, skip); // never taken
        // FP loads execute speculatively in the branch shadow: their
        // outputs taint and the fmul is a tainted FP transmitter.
        asm.fld(fr(1), r(8), 0);
        asm.fld(fr(2), r(8), 8);
        asm.fmul(fr(3), fr(1), fr(2));
        asm.fst(fr(3), r(8), 16);
        asm.bind(skip);
        asm.addi(bptr, bptr, 512);
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn fp_programs_match_golden_everywhere() {
        check_all_configs(&fp_program(false));
        check_all_configs(&fp_program(true));
    }

    #[test]
    fn fp_sdo_fails_on_subnormal_and_recovers() {
        let sec = SecurityConfig {
            protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Perfect)),
            attack: AttackModel::Spectre,
        };
        let (normal_core, _) = run_with(&fp_program(false), sec);
        assert!(normal_core.stats().fp_sdo_issued > 0);
        assert_eq!(normal_core.stats().squashes.fp_fail, 0);

        let (sub_core, sub_mem) = run_with(&fp_program(true), sec);
        assert!(sub_core.stats().squashes.fp_fail > 0, "subnormal inputs must squash");
        // Result still functionally correct.
        let expected = (f64::MIN_POSITIVE / 16.0) * 2.0;
        assert_eq!(f64::from_bits(sub_mem.backing().read_word(0x110)), expected);
    }

    #[test]
    fn stt_fp_delays_fp_transmitters() {
        let (core, _) = run_with(
            &fp_program(false),
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: true },
                attack: AttackModel::Spectre,
            },
        );
        assert!(core.stats().delayed_fp > 0, "tainted fmul must be delayed under STT{{ld+fp}}");
    }

    #[test]
    fn futuristic_is_not_cheaper_than_spectre_for_stt() {
        let prog = spec_window_program();
        let (spectre, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Spectre,
            },
        );
        let (fut, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Futuristic,
            },
        );
        assert!(
            fut.stats().cycles >= spectre.stats().cycles,
            "futuristic ({}) must be at least as slow as spectre ({})",
            fut.stats().cycles,
            spectre.stats().cycles
        );
    }

    #[test]
    fn branch_mispredicts_recover() {
        // Data-dependent unpredictable branches.
        let mut asm = Assembler::named("branchy");
        for k in 0..64u64 {
            asm.data_mut().set_word(0x400 + k * 8, (k * 2654435761) >> 7 & 1);
        }
        let (i, base, acc) = (r(1), r(2), r(3));
        asm.li(base, 0x400);
        asm.li(i, 64);
        let top = asm.here();
        asm.slli(r(4), i, 3);
        asm.add(r(4), r(4), base);
        asm.ld(r(5), r(4), -8);
        let odd = asm.label();
        let join = asm.label();
        asm.bne(r(5), Reg::ZERO, odd);
        asm.addi(acc, acc, 1);
        asm.j(join);
        asm.bind(odd);
        asm.addi(acc, acc, 100);
        asm.bind(join);
        asm.addi(i, i, -1);
        asm.bne(i, Reg::ZERO, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        check_all_configs(&prog);
        let (core, _) = run_with(&prog, SecurityConfig::unsafe_baseline());
        assert!(core.stats().mispredicts > 0, "pattern should produce some mispredicts");
        assert!(core.stats().squashes.branch > 0);
    }

    #[test]
    fn function_calls_via_ras() {
        let mut asm = Assembler::named("calls");
        let ra = r(31);
        let func = asm.label();
        let iter = r(10);
        asm.li(iter, 20);
        let top = asm.here();
        asm.jal(ra, func);
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        asm.bind(func);
        asm.addi(r(1), r(1), 5);
        asm.jr(ra);
        check_all_configs(&asm.finish().unwrap());
    }

    #[test]
    fn store_to_load_forwarding_works() {
        let mut asm = Assembler::named("fwd");
        asm.li(r(1), 0x800);
        asm.li(r(2), 4242);
        asm.st(r(2), r(1), 0);
        asm.ld(r(3), r(1), 0); // forwarded from SQ
        asm.addi(r(3), r(3), 1);
        asm.halt();
        check_all_configs(&asm.finish().unwrap());
    }

    #[test]
    fn byte_accesses_match_golden() {
        let mut asm = Assembler::named("bytes");
        asm.data_mut().set_word(0x900, 0x1122_3344_5566_7788);
        asm.li(r(1), 0x900);
        asm.ldb(r(2), r(1), 0);
        asm.ldb(r(3), r(1), 7);
        asm.stb(r(3), r(1), 9);
        asm.ldb(r(4), r(1), 9);
        asm.halt();
        check_all_configs(&asm.finish().unwrap());
    }

    #[test]
    fn commit_trace_matches_golden_order() {
        let prog = spec_window_program();
        let mut golden = Interpreter::new(&prog);
        let trace = golden.run_trace(1_000_000).unwrap();
        let golden_pcs: Vec<u64> = trace.iter().map(|e| e.pc).collect();

        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        mem.load_image(prog.data());
        let mut core = Core::new(
            0,
            CoreConfig::table_i(),
            SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Hybrid)),
                attack: AttackModel::Futuristic,
            },
            prog.clone(),
        );
        core.record_commits();
        core.run(&mut mem, 2_000_000).unwrap();
        let got = core.commit_pcs().unwrap();
        // The final Halt commits in the core; the golden trace stops
        // before recording it.
        assert_eq!(&got[..got.len() - 1], &golden_pcs[..]);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut asm = Assembler::new();
        let top = asm.here();
        asm.j(top);
        let prog = asm.finish().unwrap();
        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        let mut core =
            Core::new(0, CoreConfig::table_i(), SecurityConfig::unsafe_baseline(), prog);
        let err = core.run(&mut mem, 1000).unwrap_err();
        assert_eq!(err, RunError::CycleLimit { max_cycles: 1000 });
    }

    #[test]
    fn tainted_branch_resolution_is_delayed_under_stt() {
        // A mispredicted branch whose predicate is a speculatively-loaded
        // value: STT must defer the squash until the producer untaints,
        // so the mispredicted branch commits later than under Unsafe.
        let mut asm = Assembler::named("tainted_branch");
        // Slow bound load opens a window; the shadowed load feeds a
        // 50/50-ish branch that WILL mispredict sometimes.
        asm.data_mut().set_word(0x2000, 1); // branch predicate source
        let (bptr, bound, val) = (r(1), r(2), r(3));
        asm.li(bptr, 0x40_0000);
        asm.li(r(9), 0x2000);
        let iter = r(10);
        asm.li(iter, 40);
        let esc = asm.label();
        let top = asm.here();
        asm.ld(bound, bptr, 0);
        asm.bne(bound, Reg::ZERO, esc); // never taken, slow predicate
        asm.ld(val, r(9), 0); // speculative access: output tainted
        let flip = asm.label();
        let join = asm.label();
        // Alternate the predicate source so the branch mispredicts.
        asm.andi(r(4), iter, 1);
        asm.st(r(4), r(9), 0);
        asm.beq(val, Reg::ZERO, flip); // tainted predicate, alternating
        asm.addi(r(7), r(7), 1);
        asm.j(join);
        asm.bind(flip);
        asm.addi(r(7), r(7), 2);
        asm.bind(join);
        asm.addi(bptr, bptr, 512);
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.bind(esc);
        asm.halt();
        let prog = asm.finish().unwrap();

        check_all_configs(&prog); // functional equivalence first
        let (unsafe_core, _) = run_with(&prog, SecurityConfig::unsafe_baseline());
        let (stt_core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Spectre,
            },
        );
        assert!(unsafe_core.stats().mispredicts > 5, "the pattern must mispredict");
        assert!(stt_core.stats().mispredicts > 5);
        assert!(
            stt_core.stats().cycles > unsafe_core.stats().cycles,
            "deferred resolutions (and delayed dependents) must cost cycles: {} vs {}",
            stt_core.stats().cycles,
            unsafe_core.stats().cycles
        );
    }

    #[test]
    fn obl_exposures_happen_for_l1_hits() {
        // A hot pointer ring: Obl-Ld L1 hits choose exposure over
        // validation (Section VI-A, field 3).
        let prog = spec_window_program();
        let (core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Perfect)),
                attack: AttackModel::Spectre,
            },
        );
        assert!(core.stats().obl.exposures > 0, "L1-hit Obl-Lds must expose, not validate");
    }

    #[test]
    fn partial_store_overlap_stalls_but_completes() {
        // A byte store under a word load to the same line: the load must
        // wait (no partial forwarding), and the final value is correct.
        let mut asm = Assembler::named("partial_overlap");
        asm.li(r(1), 0x800);
        asm.li(r(2), 0x1111_1111);
        asm.st(r(2), r(1), 0);
        asm.li(r(3), 0xff);
        asm.stb(r(3), r(1), 1); // overlaps the word
        asm.ld(r(4), r(1), 0); // partial overlap: waits for the store
        asm.halt();
        check_all_configs(&asm.finish().unwrap());
    }

    #[test]
    fn lq_capacity_limits_inflight_loads() {
        // More independent loads than LQ entries on the tiny config (4):
        // dispatch must stall but everything completes correctly.
        let mut asm = Assembler::named("lq_pressure");
        for k in 0..12u8 {
            asm.data_mut().set_word(0x1000 + u64::from(k) * 8, u64::from(k) + 1);
        }
        asm.li(r(1), 0x1000);
        for k in 0..12u8 {
            asm.ld(r(2 + k % 8), r(1), i64::from(k) * 8);
        }
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut golden = Interpreter::new(&prog);
        golden.run(100_000).unwrap();
        let golden_regs = golden.int_regs();
        let mut mem = MemorySystem::new(MemConfig::tiny(), 1);
        mem.load_image(prog.data());
        let mut core = Core::new(0, CoreConfig::tiny(), SecurityConfig::unsafe_baseline(), prog);
        core.run(&mut mem, 100_000).unwrap();
        assert_eq!(core.arch_int(), golden_regs);
    }

    #[test]
    fn tainted_fp_and_byte_loads_take_the_obl_path_correctly() {
        // FP-destination and byte-width loads with *tainted addresses*:
        // both must round through the Obl-Ld machinery (value widths,
        // FP register writeback) without corrupting state.
        let mut asm = Assembler::named("tainted_widths");
        asm.data_mut().set_word(0x2000, 0x3000); // pointer to data block
        asm.data_mut().set_f64(0x3000, 6.25);
        asm.data_mut().set_word(0x3008, 0xAB);
        let (bptr, bound, p) = (r(1), r(2), r(3));
        asm.li(bptr, 0x40_0000);
        asm.li(r(9), 0x2000);
        let iter = r(10);
        asm.li(iter, 25);
        let esc = asm.label();
        let top = asm.here();
        asm.ld(bound, bptr, 0); // slow window opener
        asm.bne(bound, Reg::ZERO, esc);
        asm.ld(p, r(9), 0); // access: p is tainted
        asm.fld(fr(1), p, 0); // tainted-address FP load (Obl-Ld, fp dest)
        asm.ldb(r(4), p, 8); // tainted-address byte load
        asm.fadd(fr(2), fr(2), fr(1));
        asm.add(r(7), r(7), r(4));
        asm.bind(esc);
        asm.addi(bptr, bptr, 512);
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        check_all_configs(&prog);
        // And the Obl path really was exercised.
        let (core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Perfect)),
                attack: AttackModel::Spectre,
            },
        );
        assert!(core.stats().obl.issued > 10, "tainted fld/ldb must issue as Obl-Lds");
    }

    #[test]
    fn icache_misses_are_charged_for_large_code_footprints() {
        // A straight-line program spanning many text lines: the frontend
        // must stall on I-cache misses at least once per line.
        let mut asm = Assembler::named("big_code");
        for k in 0..512 {
            asm.addi(r(1), r(1), k % 7);
        }
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        mem.load_image(prog.data());
        let mut core =
            Core::new(0, CoreConfig::table_i(), SecurityConfig::unsafe_baseline(), prog);
        core.run(&mut mem, 1_000_000).unwrap();
        // 513 instructions / 8 per line = ~65 lines, each a cold miss.
        assert!(mem.stats().icache_misses >= 60, "got {}", mem.stats().icache_misses);

        // A hot loop spanning two text lines re-crosses the line boundary
        // every iteration: warm fetches must be L1I hits.
        let mut asm = Assembler::named("hot_loop");
        let iter = r(10);
        asm.li(iter, 300);
        let top = asm.here();
        for _ in 0..9 {
            asm.nop(); // push the back-edge onto a second line
        }
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        let mut core =
            Core::new(0, CoreConfig::table_i(), SecurityConfig::unsafe_baseline(), prog);
        core.run(&mut mem, 1_000_000).unwrap();
        assert!(
            mem.stats().icache_hits > 100,
            "looping code must hit the warm L1I, got {}",
            mem.stats().icache_hits
        );
    }

    #[test]
    fn pipeline_trace_records_ordered_lifecycles() {
        let prog = spec_window_program();
        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        mem.load_image(prog.data());
        let mut core = Core::new(
            0,
            CoreConfig::table_i(),
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Spectre,
            },
            prog,
        );
        core.enable_trace(400);
        core.run(&mut mem, 2_000_000).unwrap();
        let trace = core.trace().unwrap();
        assert_eq!(trace.len(), 400);
        let mut saw_committed = 0;
        for e in trace.entries() {
            assert!(e.issued.is_none() || e.issued.unwrap() >= e.dispatched);
            if let (Some(i), Some(c)) = (e.issued, e.completed) {
                assert!(c >= i, "complete before issue: {e:?}");
            }
            if let Some(commit) = e.committed {
                saw_committed += 1;
                assert!(e.squashed.is_none(), "committed and squashed: {e:?}");
                assert!(commit >= e.completed.unwrap_or(e.dispatched));
            }
        }
        assert!(saw_committed > 100, "most traced instructions commit");
        // STT shows up in the trace: some load has a big dispatch→issue gap.
        let delayed = trace.entries().any(|e| {
            e.inst.is_load() && e.issued.is_some_and(|i| i > e.dispatched + 20)
        });
        assert!(delayed, "STT delay must be visible in the trace");
        assert!(!trace.to_string().is_empty());
    }

    #[test]
    fn tiny_config_also_works() {
        let prog = spec_window_program();
        let mut golden = Interpreter::new(&prog);
        golden.run(5_000_000).unwrap();
        for sec in all_configs() {
            let mut mem = MemorySystem::new(MemConfig::tiny(), 1);
            mem.load_image(prog.data());
            let mut core = Core::new(0, CoreConfig::tiny(), sec, prog.clone());
            core.run(&mut mem, 5_000_000).expect("halts");
            assert_eq!(core.arch_int(), golden.int_regs(), "tiny mismatch under {sec:?}");
        }
    }

    /// Observability is a pure observer: timing and architectural state
    /// are bit-identical with it on or off, and what it records is
    /// consistent with the stats counters.
    #[test]
    fn obs_probe_observes_without_perturbing() {
        let prog = spec_window_program();
        let sec = SecurityConfig {
            protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Hybrid)),
            attack: AttackModel::Spectre,
        };
        let (plain_core, _) = run_with(&prog, sec);

        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        mem.load_image(prog.data());
        let mut core = Core::new(0, CoreConfig::table_i(), sec, prog.clone());
        core.enable_obs(ObsConfig::full(1 << 20), MemConfig::table_i().l1.mshrs as usize);
        core.run(&mut mem, 2_000_000).expect("halts");

        assert_eq!(core.now(), plain_core.now(), "obs must not change timing");
        assert_eq!(core.stats(), plain_core.stats());
        assert_eq!(core.arch_int(), plain_core.arch_int());

        let obs = core.obs().expect("enabled");
        // One occupancy sample per cycle, in every histogram.
        assert_eq!(obs.rob.count(), core.now());
        assert_eq!(obs.mshr.count(), core.now());
        assert!(obs.rob.max() <= CoreConfig::table_i().rob_entries as u64);
        assert!(obs.rob.mean() > 0.0, "the window keeps the ROB non-empty");

        let trace = obs.trace().expect("tracing enabled");
        assert_eq!(trace.dropped(), 0, "capacity chosen to hold the whole run");
        let count = |pred: fn(&sdo_obs::Event) -> bool| {
            trace.events().iter().filter(|e| pred(e)).count() as u64
        };
        let stats = core.stats();
        assert_eq!(count(|e| e.kind == ObsEvent::Commit), stats.committed);
        assert_eq!(
            count(|e| matches!(e.kind, ObsEvent::OblProbe { .. })),
            stats.obl.issued
        );
        assert_eq!(
            count(|e| matches!(e.kind, ObsEvent::Validate { .. })),
            stats.obl.validations
        );
        assert_eq!(count(|e| e.kind == ObsEvent::Expose), stats.obl.exposures);
        assert_eq!(
            count(|e| matches!(e.kind, ObsEvent::Squash { .. })),
            stats.squashes.total(),
            "one squash event per counted squash"
        );
        // Events are emitted in nondecreasing cycle order.
        assert!(trace.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));

        // take_obs detaches the probe.
        let boxed = core.take_obs().expect("probe present");
        assert!(core.obs().is_none());
        assert_eq!(boxed.rob.count(), plain_core.now());
    }
}
