//! The speculative out-of-order core with STT taint tracking and SDO.
//!
//! A cycle-level model of the Table I pipeline: 8-wide fetch through
//! commit, 192-entry ROB, 32/32 load/store queues, register renaming with
//! RAT checkpoints, a tournament branch predictor, and an issue queue
//! feeding a functional-unit pool. On top of the baseline:
//!
//! * **STT** (Section III): every physical register carries a YRoT (see
//!   [`crate::regfile`]); tainted transmitters — loads, and FP
//!   mul/div/sqrt under `STT{ld+fp}` — are delay-executed until their
//!   operands untaint; branch *resolution* (squash + predictor update) is
//!   deferred until the predicate untaints; consistency squashes are
//!   deferred until the load's address untaints.
//! * **SDO** (Sections IV–VI): under [`Protection::Sdo`], tainted loads
//!   consult the location predictor and issue as Obl-Ld operations driven
//!   by the [`sdo_core::oblld::OblLdFsm`]; tainted FP transmit ops execute
//!   the predict-normal DO variant and squash at untaint on subnormal
//!   inputs; DRAM predictions revert to STT delay.
//!
//! ## Data-oriented engine layout
//!
//! The pipeline state is structure-of-arrays (DESIGN.md §12): the ROB is
//! a circular [`crate::rob::RobSlab`] addressed by `(slot, seq)`
//! generational handles, with the per-cycle boolean state (`done`,
//! unresolved-control, load-unperformed, pending-squash, fp-failed, the
//! resolve-candidate masks) hoisted into packed [`crate::rob::BitSet`]
//! bitwords. STT visibility is the slab's safe-prefix frontier, making
//! taint checks a sequence-number compare. Writeback events run through
//! a calendar-wheel scheduler ([`crate::sched::EventWheel`]), and issue
//! readiness is event-driven via per-register wakeup lists — each stage
//! consults an O(words) dirty mask and skips when nothing it owns
//! changed, instead of sweeping the full ROB.

use crate::branch::{Btb, Ras, TournamentPredictor};
use crate::config::{AttackModel, CoreConfig, PredictorKind, Protection, SecurityConfig};
use crate::regfile::{PhysReg, RegClass, RegFile};
use crate::rob::{BitSet, RobSlab, SlotList};
use crate::sched::{Event, EventWheel};
use crate::stats::CoreStats;
use crate::trace::PipelineTrace;
use sdo_core::oblld::{OblAction, OblEvent, OblLdFsm};
use sdo_core::predictor::{
    GreedyPredictor, HybridPredictor, LocationPredictor, LoopPredictor, PatternPredictor,
    PerfectPredictor, StaticPredictor,
};
use sdo_core::{fp_do_execute, DoResult};
use sdo_isa::{FpuOp, Instruction, OpClass, Program, Reg};
use sdo_obs::{EventKind as ObsEvent, MemOp, ObsConfig, PipelineObs, QueueCaps, SquashCause};
use sdo_mem::{line_of, CacheLevel, Cycle, MemorySystem, OblReject, ServedBy};
use std::collections::VecDeque;

/// Base of the instruction-text address space: instruction index `pc`
/// occupies bytes `[ITEXT_BASE + pc * 8, ITEXT_BASE + pc * 8 + 8)`.
/// Keeping text far above any data address lets instructions share the
/// Base of the instruction-text address space: instruction index `pc`
/// occupies bytes `[ITEXT_BASE + pc * 8, ITEXT_BASE + pc * 8 + 8)`.
/// Keeping text far above any data address lets instructions share the
/// unified L2/L3 without colliding with workload data.
pub const ITEXT_BASE: u64 = 1 << 40;

/// Error from [`Core::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The program did not halt within the cycle budget.
    CycleLimit {
        /// The exhausted budget.
        max_cycles: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::CycleLimit { max_cycles } => {
                write!(f, "program did not halt within {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Waiting,
    Executing,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    pc: u64,
    inst: Instruction,
    pred_taken: bool,
    pred_target: u64,
    ready_at: Cycle,
}

/// Cold per-entry ROB payload, stored in the slab's `body` array. The
/// hot boolean state lives in the core's per-slot [`BitSet`]s instead
/// (`done_bits`, `ctrl_unresolved`, `load_unperformed`, `pending_squash`,
/// `fp_failed`, `resolve_ready`, `obl_unsafe`), and the STT `safe` flag
/// is the slab's safe-prefix frontier.
#[derive(Debug)]
struct DynInst {
    pc: u64,
    inst: Instruction,
    status: Status,
    pdst: Option<PhysReg>,
    old_pdst: Option<PhysReg>,
    psrcs: [Option<PhysReg>; 4],
    // Control flow.
    pred_taken: bool,
    pred_target: u64,
    outcome: Option<(bool, u64)>, // (taken, next pc)
    // Memory.
    addr: Option<u64>,
    store_data: Option<u64>,
    width_bytes: u64,
    // Protection state.
    delayed_since: Option<Cycle>,
    delay_counted: bool,
    obl: Option<OblLdFsm>,
    obl_safe_sent: bool,
    obl_first_hit_at: Option<Cycle>,
    sq_forwarded: bool,
}

impl DynInst {
    /// Inert placeholder filling unoccupied slab slots; every field is
    /// overwritten when the slot is dispatched into.
    fn empty() -> Self {
        DynInst {
            pc: 0,
            inst: Instruction::Nop,
            status: Status::Done,
            pdst: None,
            old_pdst: None,
            psrcs: [None; 4],
            pred_taken: false,
            pred_target: 0,
            outcome: None,
            addr: None,
            store_data: None,
            width_bytes: 8,
            delayed_since: None,
            delay_counted: false,
            obl: None,
            obl_safe_sent: false,
            obl_first_hit_at: None,
            sq_forwarded: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// Functional-unit completion; write `value` (if any) to the dest.
    Exec { value: Option<u64> },
    /// Normal load completion.
    LoadDone { value: u64 },
    /// One Obl-Ld per-level response.
    OblResp { level: CacheLevel, hit: bool, value: Option<u64> },
    /// Validation access completion.
    ValidationDone { value: u64, matches: bool, level: CacheLevel },
}

#[derive(Debug, Clone, Copy)]
struct FuBudget {
    alu: u32,
    muldiv: u32,
    fp: u32,
    mem: u32,
}

/// One simulated out-of-order core.
///
/// Create with [`Core::new`], then either step cycle-by-cycle with
/// [`Core::tick`] against a shared [`MemorySystem`], or drive to
/// completion with [`Core::run`].
///
/// # Examples
///
/// ```rust
/// use sdo_isa::{Assembler, Reg};
/// use sdo_mem::{MemConfig, MemorySystem};
/// use sdo_uarch::{Core, CoreConfig, SecurityConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut asm = Assembler::new();
/// asm.li(Reg::new(1), 20);
/// asm.muli(Reg::new(2), Reg::new(1), 2);
/// asm.halt();
/// let prog = asm.finish()?;
///
/// let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
/// mem.load_image(prog.data());
/// let mut core = Core::new(0, CoreConfig::table_i(), SecurityConfig::unsafe_baseline(), prog);
/// core.run(&mut mem, 100_000)?;
/// assert_eq!(core.arch_int()[2], 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Core {
    id: usize,
    cfg: CoreConfig,
    sec: SecurityConfig,
    program: Program,
    now: Cycle,
    next_seq: u64,
    next_event_order: u64,
    fetch_pc: u64,
    fetch_halted: bool,
    fetch_q: VecDeque<Fetched>,
    /// The structure-of-arrays reorder buffer (cold payload + seq array).
    rob: RobSlab<DynInst>,
    /// Hot per-slot pipeline state, one bit per ROB slot. `done_bits`
    /// mirrors the retired-result flag; `ctrl_unresolved` marks control
    /// instructions whose resolution has not applied (the visibility
    /// blocker); `load_unperformed` marks loads whose value has not been
    /// received/forwarded (Futuristic-model blocker); `pending_squash` /
    /// `fp_failed` are the deferred-action latches. `resolve_ready` and
    /// `obl_unsafe` are the resolve stage's candidate masks — its
    /// dirty-set: a zero mask skips the sweep outright.
    done_bits: BitSet,
    ctrl_unresolved: BitSet,
    load_unperformed: BitSet,
    pending_squash: BitSet,
    fp_failed: BitSet,
    resolve_ready: BitSet,
    obl_unsafe: BitSet,
    /// Issue/load/store queues as `(slot, seq)` handle lists, purged on
    /// squash so they only ever hold live entries.
    iq: SlotList,
    /// STT-delayed transmitters pulled out of the ready set until the
    /// visibility frontier passes their taint source: `(slot, seq,
    /// taint_seq)`. Re-attempting them every cycle would issue nothing
    /// and touch no architectural or statistical state, so the issue
    /// stage sweeps them back in only when the frontier moves.
    parked: Vec<(u32, u64, u64)>,
    /// Frontier value at the last parked sweep.
    parked_frontier: u64,
    lq: Vec<(u32, u64)>,
    sq: Vec<(u32, u64)>,
    /// Event-driven issue readiness: `iq_unready[slot]` counts the
    /// entry's not-yet-produced sources (registered as waiters on their
    /// registers at dispatch); `iq_ready` + `iq_ready_count` cache the
    /// zero-count set. `iq_ready_count == 0` is the issue stage's exact
    /// skip gate.
    iq_ready: BitSet,
    iq_unready: Vec<u8>,
    iq_ready_count: usize,
    regs: RegFile,
    /// Calendar-wheel writeback scheduler (O(1) schedule/drain on the
    /// common path; see [`crate::sched`]).
    events: EventWheel<EvKind>,
    /// Reusable drain buffer for event delivery.
    event_buf: Vec<Event<EvKind>>,
    /// Reusable buffer for register-wakeup processing.
    wake_buf: Vec<(u32, u64)>,
    bp: TournamentPredictor,
    btb: Btb,
    ras: Ras,
    predictor: Box<dyn LocationPredictor>,
    stats: CoreStats,
    halted: bool,
    commit_pcs: Option<Vec<u64>>,
    trace: Option<PipelineTrace>,
    /// Structured observability probe (occupancy histograms + event
    /// trace). `None` unless enabled — the disabled hot path is a single
    /// `Option` check per cycle, with no allocation.
    obs: Option<Box<PipelineObs>>,
    fetch_stall_until: Cycle,
    last_fetch_line: Option<u64>,
    /// Non-pipelined unit occupancy: one slot per integer mul/div unit
    /// and per FP unit. A long-latency op (divide, sqrt, subnormal slow
    /// path) holds its unit until completion — this structural contention
    /// is precisely the FP covert channel of Section I-A.
    muldiv_busy: Vec<Cycle>,
    fp_busy: Vec<Cycle>,
    /// Reusable candidate buffer for the resolve stage's mask snapshots,
    /// so the per-cycle sweeps never allocate once it reaches
    /// steady-state capacity.
    scratch_slots: Vec<(u32, u64)>,
    /// Quiescence fast-forward: when a tick changes nothing, jump the
    /// clock to the event horizon instead of stepping stalled cycles one
    /// at a time. Cycle-exact (see DESIGN.md); off by default, opted in
    /// by single-core drivers via [`Core::set_fast_forward`].
    fast_forward: bool,
    /// Hard ceiling for a fast-forward jump. [`Core::run`] keeps it at
    /// its `max_cycles` so a hung program still stops at exactly the
    /// cycle limit a stepped loop would reach.
    skip_cap: Cycle,
    /// Cycles elided by fast-forward jumps. They are still fully
    /// accounted in `stats.cycles` (and every other per-cycle counter);
    /// this only records how many the loop did not step individually.
    /// Kept out of [`CoreStats`] so metric/CSV exports stay identical
    /// with skipping on or off.
    skipped_cycles: u64,
    /// Whether any stage changed state during the current tick (the
    /// fast-forward gate).
    progressed: bool,
}

fn build_predictor(kind: PredictorKind) -> Box<dyn LocationPredictor> {
    match kind {
        PredictorKind::Static(level) => Box::new(StaticPredictor::new(level)),
        PredictorKind::Greedy => Box::new(GreedyPredictor::default()),
        PredictorKind::Loop => Box::new(LoopPredictor::default()),
        PredictorKind::Hybrid => Box::new(HybridPredictor::default()),
        PredictorKind::Pattern => Box::new(PatternPredictor::default()),
        PredictorKind::Perfect => Box::new(PerfectPredictor),
    }
}

impl Core {
    /// Builds a core with its own branch predictor, register file and (for
    /// SDO configurations) location predictor. `id` selects the core's
    /// tile in the shared memory system.
    #[must_use]
    pub fn new(id: usize, cfg: CoreConfig, sec: SecurityConfig, program: Program) -> Self {
        let kind = match sec.protection {
            Protection::Sdo(s) => s.predictor,
            // Unused, but keeps the field total.
            _ => PredictorKind::Static(CacheLevel::L1),
        };
        let cap = cfg.rob_entries;
        Core {
            id,
            cfg,
            sec,
            program,
            now: 0,
            next_seq: 0,
            next_event_order: 0,
            fetch_pc: 0,
            fetch_halted: false,
            fetch_q: VecDeque::new(),
            rob: RobSlab::new(cap, DynInst::empty),
            done_bits: BitSet::new(cap),
            ctrl_unresolved: BitSet::new(cap),
            load_unperformed: BitSet::new(cap),
            pending_squash: BitSet::new(cap),
            fp_failed: BitSet::new(cap),
            resolve_ready: BitSet::new(cap),
            obl_unsafe: BitSet::new(cap),
            iq: SlotList::new(cap),
            parked: Vec::new(),
            parked_frontier: u64::MAX,
            lq: Vec::new(),
            sq: Vec::new(),
            iq_ready: BitSet::new(cap),
            iq_unready: vec![0; cap],
            iq_ready_count: 0,
            regs: RegFile::new(cfg.phys_int_regs, cfg.phys_fp_regs),
            events: EventWheel::new(),
            event_buf: Vec::new(),
            wake_buf: Vec::new(),
            bp: TournamentPredictor::new(),
            btb: Btb::new(cfg.btb_entries),
            ras: Ras::new(cfg.ras_entries),
            predictor: build_predictor(kind),
            stats: CoreStats::default(),
            halted: false,
            commit_pcs: None,
            trace: None,
            obs: None,
            fetch_stall_until: 0,
            last_fetch_line: None,
            muldiv_busy: vec![0; cfg.fus.int_muldiv as usize],
            fp_busy: vec![0; cfg.fus.fp as usize],
            scratch_slots: Vec::new(),
            fast_forward: false,
            skip_cap: 0,
            skipped_cycles: 0,
            progressed: false,
        }
    }

    /// Enables (or disables) quiescence fast-forward for this core.
    ///
    /// Only meaningful for a core driven through [`Core::run`] as the
    /// sole core on its memory system: the event horizon consults this
    /// core's timers plus the shared memory system, so another core's
    /// activity during a skipped interval would be missed. Multi-core
    /// lockstep drivers must leave this off.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Cycles elided by quiescence fast-forward so far. Always 0 unless
    /// [`Core::set_fast_forward`] enabled skipping; skipped cycles are
    /// still fully accounted in [`Core::stats`].
    #[must_use]
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Enables recording of committed PCs (for differential testing).
    pub fn record_commits(&mut self) {
        self.commit_pcs = Some(Vec::new());
    }

    /// Enables pipeline tracing for the first `capacity` dispatched
    /// instructions (see [`PipelineTrace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(PipelineTrace::new(capacity));
    }

    /// The recorded pipeline trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&PipelineTrace> {
        self.trace.as_ref()
    }

    /// Enables structured observability per `cfg`: per-cycle occupancy
    /// histograms sized from this core's queue capacities, and/or a
    /// bounded event trace. `mshr_capacity` sizes the MSHR occupancy
    /// histogram (the L1 MSHR file lives in the memory system). A
    /// disabled `cfg` is a no-op, preserving the allocation-free path.
    pub fn enable_obs(&mut self, cfg: ObsConfig, mshr_capacity: usize) {
        if cfg.enabled() {
            self.obs = Some(Box::new(PipelineObs::new(
                cfg,
                QueueCaps {
                    rob: self.cfg.rob_entries,
                    iq: self.cfg.iq_entries,
                    lq: self.cfg.lq_entries,
                    sq: self.cfg.sq_entries,
                    mshr: mshr_capacity,
                },
            )));
        }
    }

    /// The observability probe, if enabled.
    #[must_use]
    pub fn obs(&self) -> Option<&PipelineObs> {
        self.obs.as_deref()
    }

    /// Detaches the observability probe (e.g. to fold into a run
    /// result after the core is dropped).
    pub fn take_obs(&mut self) -> Option<Box<PipelineObs>> {
        self.obs.take()
    }

    /// Committed PCs, if recording was enabled.
    #[must_use]
    pub fn commit_pcs(&self) -> Option<&[u64]> {
        self.commit_pcs.as_deref()
    }

    /// Whether a `Halt` has committed.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Committed architectural integer state.
    #[must_use]
    pub fn arch_int(&self) -> [u64; 32] {
        self.regs.arch_int()
    }

    /// Committed architectural FP state (bit patterns).
    #[must_use]
    pub fn arch_fp(&self) -> [u64; 32] {
        self.regs.arch_fp()
    }

    /// Renders a short diagnostic description of the oldest ROB entries
    /// (pipeline state at a glance; intended for debugging stuck runs).
    #[must_use]
    pub fn debug_head(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cycle {} rob {} iq {} lq {} sq {} fetch_q {} events {} next_ev {:?}",
            self.now, self.rob.len(), self.iq.len(), self.lq.len(), self.sq.len(), self.fetch_q.len(),
            self.events.len(), self.events.peek_earliest(self.now).map(|e| (e.at, e.seq, e.kind)));
        for slot in self.rob.slots().take(n) {
            let e = self.rob.body(slot);
            let seq = self.rob.seq_of(slot);
            let _ = writeln!(
                out,
                "  seq {} pc {} {:?} st {:?} done {} safe {} iq {} res_applied {} obl {:?} fsm_done {:?} safe_sent {} pend_sq {}",
                seq, e.pc, e.inst.class(), e.status, self.done_bits.get(slot),
                self.iq.contains(slot),
                seq < self.rob.first_unsafe_seq(),
                !self.ctrl_unresolved.get(slot),
                e.obl.as_ref().map(|f| f.predicted()),
                e.obl.as_ref().map(|f| f.is_done()),
                e.obl_safe_sent, self.pending_squash.get(slot),
            );
            let _ = writeln!(
                out,
                "      awaiting_validation {:?} fwd {:?}",
                e.obl.as_ref().map(|f| f.awaiting_validation()),
                e.obl.as_ref().map(|f| f.forwarded_value()),
            );
        }
        out
    }

    /// Runs until halt or `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::CycleLimit`] if the program does not halt in
    /// time.
    pub fn run(&mut self, mem: &mut MemorySystem, max_cycles: u64) -> Result<(), RunError> {
        self.skip_cap = max_cycles;
        while !self.halted {
            if self.now >= max_cycles {
                return Err(RunError::CycleLimit { max_cycles });
            }
            self.tick(mem);
        }
        Ok(())
    }

    /// Advances the core by one cycle.
    ///
    /// Stage order within a cycle (oldest effects first):
    ///
    /// 1. **deliver events** — functional-unit completions, load data,
    ///    Obl-Ld responses and validation results scheduled for this
    ///    cycle write back and wake dependents;
    /// 2. **invalidation intake** — coherence invalidations mark
    ///    completed-but-unretired loads for (deferred) consistency
    ///    squashes;
    /// 3. **resolve** — visibility points advance (untaint), branch
    ///    resolutions whose predicates untainted apply (squash +
    ///    predictor update), Obl-Ld `Safe` events fire, failed FP-SDO ops
    ///    re-execute, deferred consistency squashes apply;
    /// 4. **commit** — up to `width` completed instructions retire in
    ///    order; stores perform;
    /// 5. **issue** — ready instructions leave the issue queue for
    ///    functional units or the memory system, subject to STT/SDO
    ///    transmitter rules;
    /// 6. **dispatch** — fetched instructions rename into the ROB/queues;
    /// 7. **fetch** — the frontend follows branch predictions, gated by
    ///    the instruction cache.
    pub fn tick(&mut self, mem: &mut MemorySystem) {
        if self.halted {
            return;
        }
        self.now += 1;
        self.stats.cycles = self.now;
        self.progressed = false;
        // Per-cycle counters that repeat identically over a quiescent
        // interval; their deltas this tick are replayed in bulk if the
        // tick turns out to be skippable.
        let stall0 = self.stats.obl.validation_stall_cycles;
        let retry0 = self.stats.obl.mshr_retries;
        let reject0 = mem.stats().obl_mshr_rejects;
        self.deliver_events(mem);
        self.intake_invalidations(mem);
        self.resolve_stage(mem);
        self.commit_stage(mem);
        self.issue_stage(mem);
        self.dispatch_stage();
        self.fetch_stage(mem);
        if let Some(obs) = self.obs.as_deref_mut() {
            if obs.wants_occupancy() {
                let mshr = mem.mshr_in_use(self.id, self.now) as u64;
                obs.sample(
                    self.rob.len() as u64,
                    self.iq.len() as u64,
                    self.lq.len() as u64,
                    self.sq.len() as u64,
                    mshr,
                );
            }
        }
        if self.fast_forward && !self.progressed && !self.halted && self.now < self.skip_cap {
            self.quiesce_skip(mem, stall0, retry0, reject0);
        }
    }

    /// Fast-forwards over a quiescent interval. Called after a tick in
    /// which no stage changed any state: every future change must then
    /// originate from an already-computed timer — a scheduled completion
    /// event, the frontend stall/ready timers, a non-pipelined unit
    /// release, or an in-flight miss in the memory system. The **event
    /// horizon** is the earliest such cycle; the clock jumps to just
    /// before it (clamped to `skip_cap`), and the skipped cycles' only
    /// per-cycle effects — occupancy samples plus the stall/retry
    /// counters this tick accrued, which repeat identically while
    /// nothing changes — are applied in bulk. See DESIGN.md
    /// ("Quiescence fast-forward") for the cycle-exactness argument.
    /// The scheduler's contribution comes from the calendar wheel's
    /// occupancy bitmap ([`EventWheel::next_at`]).
    fn quiesce_skip(&mut self, mem: &mut MemorySystem, stall0: u64, retry0: u64, reject0: u64) {
        let now = self.now;
        let mut horizon: Option<Cycle> = None;
        {
            let mut consider = |at: Cycle| {
                if at > now {
                    horizon = Some(horizon.map_or(at, |h| h.min(at)));
                }
            };
            if let Some(at) = self.events.next_at(now) {
                consider(at);
            }
            if !self.fetch_halted {
                consider(self.fetch_stall_until);
            }
            if let Some(f) = self.fetch_q.front() {
                consider(f.ready_at);
            }
            for &busy in self.muldiv_busy.iter().chain(&self.fp_busy) {
                consider(busy);
            }
            if let Some(at) = mem.next_event(now) {
                consider(at);
            }
        }
        // No wake source at all means nothing will ever change: jump
        // straight to the cycle limit, exactly where a stepped loop
        // would give up.
        let target = horizon.map_or(self.skip_cap, |h| (h - 1).min(self.skip_cap));
        if target <= now {
            return;
        }
        let n = target - now;
        self.now = target;
        self.stats.cycles = target;
        self.skipped_cycles += n;
        let stall_delta = self.stats.obl.validation_stall_cycles - stall0;
        let retry_delta = self.stats.obl.mshr_retries - retry0;
        let reject_delta = mem.stats().obl_mshr_rejects - reject0;
        self.stats.obl.validation_stall_cycles += stall_delta * n;
        self.stats.obl.mshr_retries += retry_delta * n;
        mem.record_obl_mshr_rejects(reject_delta * n);
        if let Some(obs) = self.obs.as_deref_mut() {
            if obs.wants_occupancy() {
                // Queue fill levels are frozen during quiescence, and the
                // horizon is clamped below every in-flight MSHR
                // completion, so one bulk sample is exact.
                let mshr = mem.mshr_in_use(self.id, target) as u64;
                obs.sample_n(
                    self.rob.len() as u64,
                    self.iq.len() as u64,
                    self.lq.len() as u64,
                    self.sq.len() as u64,
                    mshr,
                    n,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Slot helpers
    // ------------------------------------------------------------------

    /// Whether a YRoT still denotes tainted data: true iff the rooted
    /// load has not reached its visibility point. Because visibility is
    /// a window prefix, this is a compare against the frontier seq — no
    /// ROB access. (A committed root's seq is below every live seq; a
    /// squashed root can only be referenced by consumers squashed with
    /// it, so live queries never see one.)
    fn taint_active(&self, yrot: Option<u64>) -> bool {
        yrot.is_some_and(|seq| seq >= self.rob.first_unsafe_seq())
    }

    fn srcs_tainted(&self, slot: u32) -> bool {
        self.rob
            .body(slot)
            .psrcs
            .iter()
            .flatten()
            .any(|p| self.taint_active(self.regs.yrot(*p)))
    }

    fn addr_operand_tainted(&self, slot: u32) -> bool {
        // For loads the address operand is the (single) integer source.
        self.srcs_tainted(slot)
    }

    /// Max YRoT over the entry's sources — the sequence number whose
    /// untainting unblocks an STT-delayed transmitter. `None` means no
    /// source ever carried taint.
    fn src_taint_seq(&self, slot: u32) -> Option<u64> {
        self.rob.body(slot).psrcs.iter().flatten().filter_map(|p| self.regs.yrot(*p)).max()
    }

    /// Parks an STT-delayed transmitter: out of the ready set until the
    /// frontier passes its taint source. Exact because the delay arms
    /// tick no per-attempt counters after the first attempt (which has
    /// already happened when this is called) and consult nothing that
    /// can change while the source stays tainted.
    fn park(&mut self, slot: u32, seq: u64) {
        let Some(t) = self.src_taint_seq(slot) else {
            // Callers only park entries they just judged tainted; leaving
            // an untainted one in the ready set merely re-attempts it.
            debug_assert!(false, "parked entries have a tainted source");
            return;
        };
        debug_assert!(t >= self.rob.first_unsafe_seq(), "parked entry must be tainted");
        debug_assert!(self.iq_ready.get(slot));
        self.iq_ready.clear(slot);
        self.iq_ready_count -= 1;
        self.parked.push((slot, seq, t));
    }

    /// Returns parked transmitters whose taint source has become visible
    /// to the ready set. Runs only when the frontier moved; entries
    /// squashed while parked fail the handle check and drop out.
    fn unpark_visible(&mut self) {
        let frontier = self.rob.first_unsafe_seq();
        if frontier == self.parked_frontier {
            return;
        }
        self.parked_frontier = frontier;
        if self.parked.is_empty() {
            return;
        }
        let mut parked = std::mem::take(&mut self.parked);
        parked.retain(|&(slot, seq, t)| {
            if !self.rob.is_live(slot, seq) {
                return false;
            }
            if t < frontier {
                debug_assert!(!self.iq_ready.get(slot));
                self.iq_ready.set(slot);
                self.iq_ready_count += 1;
                return false;
            }
            true
        });
        self.parked = parked;
    }

    /// Resets every per-slot bit for an entry leaving the window, so a
    /// stale bit can never pollute a sweep mask after the slot is
    /// reused (or worse, while it is dead).
    fn clear_slot_state(&mut self, slot: u32) {
        self.done_bits.clear(slot);
        self.ctrl_unresolved.clear(slot);
        self.load_unperformed.clear(slot);
        self.pending_squash.clear(slot);
        self.fp_failed.clear(slot);
        self.resolve_ready.clear(slot);
        self.obl_unsafe.clear(slot);
        if self.iq_ready.get(slot) {
            self.iq_ready.clear(slot);
            self.iq_ready_count -= 1;
        }
        self.iq_unready[slot as usize] = 0;
        if self.iq.contains(slot) {
            self.iq.remove(slot);
        }
    }

    /// Writeback: produce `p`'s value and wake issue-queue entries
    /// blocked on it (decrementing their unready counts; a count hitting
    /// zero marks the entry issue-ready). Stale waiter registrations —
    /// from squashed consumers — fail the handle check and are dropped.
    fn write_reg(&mut self, p: PhysReg, v: u64) {
        self.regs.write(p, v);
        let mut buf = std::mem::take(&mut self.wake_buf);
        self.regs.drain_waiters_into(p, &mut buf);
        for &(slot, seq) in &buf {
            if self.rob.is_live(slot, seq) && self.iq_unready[slot as usize] > 0 {
                self.iq_unready[slot as usize] -= 1;
                if self.iq_unready[slot as usize] == 0 {
                    self.iq_ready.set(slot);
                    self.iq_ready_count += 1;
                }
            }
        }
        buf.clear();
        self.wake_buf = buf;
    }

    fn schedule(&mut self, at: Cycle, slot: u32, kind: EvKind) {
        self.next_event_order += 1;
        let order = self.next_event_order;
        let seq = self.rob.seq_of(slot);
        self.events.push(
            self.now,
            Event { at: at.max(self.now + 1), order, slot, seq, kind },
        );
    }

    // ------------------------------------------------------------------
    // Event delivery
    // ------------------------------------------------------------------

    fn deliver_events(&mut self, mem: &mut MemorySystem) {
        let mut due = std::mem::take(&mut self.event_buf);
        self.events.drain_due(self.now, &mut due);
        for ev in due.drain(..) {
            // Even a stale (squashed) delivery counts as progress: it
            // changes the scheduler, and the horizon may have pointed
            // here.
            self.progressed = true;
            if !self.rob.is_live(ev.slot, ev.seq) {
                continue; // squashed
            }
            match ev.kind {
                EvKind::Exec { value } => self.on_exec_done(ev.slot, value),
                EvKind::LoadDone { value } => self.on_load_done(ev.slot, value),
                EvKind::OblResp { level, hit, value } => {
                    if self.obs.is_some() {
                        let pc = self.rob.body(ev.slot).pc;
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.emit(self.now, ev.seq, pc, ObsEvent::OblTouch { level: level.depth() });
                        }
                    }
                    self.on_fsm_event(mem, ev.slot, OblEvent::Response { level, hit, value });
                }
                EvKind::ValidationDone { value, matches, level } => {
                    self.on_fsm_event(mem, ev.slot, OblEvent::ValidationDone { value, matches, level });
                }
            }
        }
        self.event_buf = due;
    }

    fn on_exec_done(&mut self, slot: u32, value: Option<u64>) {
        if let (Some(v), Some(p)) = (value, self.rob.body(slot).pdst) {
            self.write_reg(p, v);
        }
        self.rob.body_mut(slot).status = Status::Done;
        if self.ctrl_unresolved.get(slot) {
            // Control instructions whose resolution is still pending
            // (squash + predictor update may be deferred by STT until the
            // predicate untaints) become `done` only when the resolution
            // applies — but they are resolve candidates from here on.
            if self.rob.body(slot).outcome.is_some() {
                self.resolve_ready.set(slot);
            }
        } else {
            self.done_bits.set(slot);
        }
        if let Some(t) = self.trace.as_mut() {
            t.complete(self.rob.seq_of(slot), self.now);
        }
    }

    fn load_value_for_width(word: u64, width: u64) -> u64 {
        match width {
            1 => word & 0xff,
            2 => word & 0xffff,
            4 => word & 0xffff_ffff,
            _ => word,
        }
    }

    fn on_load_done(&mut self, slot: u32, value: u64) {
        let e = self.rob.body(slot);
        let v = Self::load_value_for_width(value, e.width_bytes);
        if let Some(p) = e.pdst {
            self.write_reg(p, v);
        }
        self.rob.body_mut(slot).status = Status::Done;
        self.done_bits.set(slot);
        self.load_unperformed.clear(slot);
        if let Some(t) = self.trace.as_mut() {
            t.complete(self.rob.seq_of(slot), self.now);
        }
    }

    // ------------------------------------------------------------------
    // Obl-Ld FSM action plumbing
    // ------------------------------------------------------------------

    fn on_fsm_event(&mut self, mem: &mut MemorySystem, slot: u32, event: OblEvent) {
        let now = self.now;
        let e = self.rob.body_mut(slot);
        // Track imprecision: remember when the first success arrived.
        if let OblEvent::Response { hit: true, .. } = event {
            if e.obl_first_hit_at.is_none() {
                e.obl_first_hit_at = Some(now);
            }
        }
        let Some(fsm) = e.obl.as_mut() else { return };
        let actions = fsm.on_event(event);
        let from_validation = matches!(event, OblEvent::ValidationDone { .. });
        self.apply_obl_actions(mem, slot, &actions, from_validation);
    }

    fn apply_obl_actions(
        &mut self,
        mem: &mut MemorySystem,
        slot: u32,
        actions: &[OblAction],
        from_validation: bool,
    ) {
        // The target entry survives every action below (an Obl squash
        // only kills *younger* instructions), so `slot` stays live.
        let seq = self.rob.seq_of(slot);
        for action in actions {
            match *action {
                OblAction::Forward { value } => {
                    let e = self.rob.body(slot);
                    // Store-queue forwarding overrides the memory value
                    // (Section V-C3): the Obl-Ld executed for timing, the
                    // data comes from the SQ. (Handled before FSM creation
                    // in this implementation; kept for defense in depth.)
                    let v = Self::load_value_for_width(value, e.width_bytes);
                    if let Some(p) = e.pdst {
                        self.write_reg(p, v);
                    }
                    // The load's value is now performed: it no longer
                    // blocks Futuristic visibility (and stays performed
                    // even if a validation later squashes-and-reissues).
                    self.load_unperformed.clear(slot);
                    // Imprecision accounting: cycles between the first
                    // success response and this forward.
                    let e = self.rob.body(slot);
                    if !from_validation {
                        if let Some(first) = e.obl_first_hit_at {
                            self.stats.obl.imprecision_cycles += self.now.saturating_sub(first);
                        }
                    }
                }
                OblAction::Squash => {
                    let cause = if from_validation {
                        self.stats.squashes.validation += 1;
                        SquashCause::Validation
                    } else {
                        self.stats.squashes.obl_fail += 1;
                        SquashCause::OblFail
                    };
                    let e = self.rob.body(slot);
                    let pc = e.pc;
                    let redirect = e.pc + 1;
                    if let Some(p) = e.pdst {
                        self.regs.unwrite(p);
                    }
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.emit(self.now, seq, pc, ObsEvent::Squash { cause });
                    }
                    self.squash_after(seq);
                    // Re-fetch the (squashed) dependents of the load.
                    self.fetch_pc = redirect;
                }
                OblAction::IssueValidation => {
                    let e = self.rob.body(slot);
                    let pc = e.pc;
                    let addr = e.addr.expect("issued load has an address");
                    let expected = e.obl.as_ref().and_then(OblLdFsm::forwarded_value).unwrap_or(0);
                    self.stats.obl.validations += 1;
                    let (res, matches) = mem.validate(self.id, addr, expected, self.now);
                    if self.obs.is_some() {
                        let tainted = self.addr_operand_tainted(slot);
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.emit(self.now, seq, pc, ObsEvent::Validate { matched: matches });
                            o.emit(
                                self.now,
                                seq,
                                pc,
                                ObsEvent::MemAccess { line: addr / 64, op: MemOp::Validate, tainted },
                            );
                        }
                    }
                    self.schedule(
                        res.complete_at,
                        slot,
                        EvKind::ValidationDone {
                            value: res.value,
                            matches,
                            level: res.served_by.level(),
                        },
                    );
                }
                OblAction::IssueExposure => {
                    let e = self.rob.body(slot);
                    let pc = e.pc;
                    let addr = e.addr.expect("issued load has an address");
                    self.stats.obl.exposures += 1;
                    mem.expose(self.id, addr, self.now);
                    if self.obs.is_some() {
                        let tainted = self.addr_operand_tainted(slot);
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.emit(self.now, seq, pc, ObsEvent::Expose);
                            o.emit(
                                self.now,
                                seq,
                                pc,
                                ObsEvent::MemAccess { line: addr / 64, op: MemOp::Expose, tainted },
                            );
                        }
                    }
                }
                OblAction::UpdatePredictor { level } => {
                    let e = self.rob.body(slot);
                    let pc = e.pc;
                    let predicted = e.obl.as_ref().expect("obl load").predicted();
                    if self.obs.is_some() {
                        let tainted = self.addr_operand_tainted(slot);
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.emit(self.now, seq, pc, ObsEvent::PredictorUpdate { tainted });
                        }
                    }
                    self.predictor.update(pc, level);
                    self.stats.record_prediction(predicted.depth(), level.depth());
                }
                OblAction::Complete => {
                    self.rob.body_mut(slot).status = Status::Done;
                    self.done_bits.set(slot);
                    if let Some(t) = self.trace.as_mut() {
                        t.complete(seq, self.now);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Invalidation intake (memory consistency, Section V-C1)
    // ------------------------------------------------------------------

    fn intake_invalidations(&mut self, mem: &mut MemorySystem) {
        let invals = mem.take_invalidations(self.id);
        if invals.is_empty() {
            return;
        }
        self.progressed = true;
        for line in invals {
            // Completed-but-unretired loads to this line may violate
            // consistency; mark them. The squash itself is deferred until
            // the load's address is untainted (STT's implicit-channel rule
            // applied to the consistency check). The load queue is purged
            // on squash, so every entry is live.
            for i in 0..self.lq.len() {
                let (slot, seq) = self.lq[i];
                debug_assert!(self.rob.is_live(slot, seq));
                if self.pending_squash.get(slot) || !self.done_bits.get(slot) {
                    continue;
                }
                let e = self.rob.body(slot);
                if e.sq_forwarded {
                    continue; // data came from our own store queue
                }
                if e.addr.is_some_and(|a| line_of(a) == line) {
                    self.pending_squash.set(slot);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Resolve stage: visibility, untaint-gated actions
    // ------------------------------------------------------------------

    fn update_visibility(&mut self) {
        let futuristic =
            self.sec.attack == AttackModel::Futuristic && self.sec.protection != Protection::Unsafe;
        // Visibility is the slab's safe-prefix frontier: it advances to
        // (and including) the first blocker. Spectre-model blockers are
        // unresolved control; the Futuristic model adds unperformed
        // loads, pending consistency squashes and failed FP-SDO ops.
        // (Per the paper's footnote 4 an Obl-Ld awaiting only its
        // validation no longer blocks — `load_unperformed` clears on
        // forward, not on validation.)
        let progressed = if futuristic {
            self.rob.advance_safe(&[
                &self.ctrl_unresolved,
                &self.load_unperformed,
                &self.pending_squash,
                &self.fp_failed,
            ])
        } else {
            self.rob.advance_safe(&[&self.ctrl_unresolved])
        };
        if progressed {
            // An untaint can enable issue/resolve actions later in this
            // same tick — but flag it as progress regardless, so
            // quiescence never hides a visibility advance.
            self.progressed = true;
        }
    }

    fn resolve_stage(&mut self, mem: &mut MemorySystem) {
        self.update_visibility();

        let protected = self.sec.protection != Protection::Unsafe;

        // Candidate sweeps reuse one scratch buffer (taken out of `self`
        // so the loop bodies can borrow `self` mutably) — the resolve
        // stage allocates nothing once the buffer reaches ROB capacity.
        // Each sweep snapshots its candidate mask into `(slot, seq)`
        // handles oldest-first and re-checks liveness as squashes land;
        // an empty mask skips the sweep without touching the window.
        let mut candidates = std::mem::take(&mut self.scratch_slots);

        // 1. Branch resolutions (executed) whose predicate is untainted.
        if self.resolve_ready.any() {
            self.rob.collect_mask(&self.resolve_ready, &mut candidates);
            for &(slot, seq) in &candidates {
                if !self.rob.is_live(slot, seq) {
                    break; // a prior resolution squashed the rest
                }
                if protected && self.srcs_tainted(slot) {
                    continue; // STT: delay resolution until untainted
                }
                if self.apply_resolution(slot) {
                    break; // squash: younger candidates are gone
                }
            }
        }

        // 2. Obl-Ld loads whose address operand just untainted: event C.
        if self.obl_unsafe.any() {
            self.rob.collect_mask(&self.obl_unsafe, &mut candidates);
            for &(slot, seq) in &candidates {
                if !self.rob.is_live(slot, seq) {
                    break;
                }
                if self.addr_operand_tainted(slot) {
                    continue;
                }
                self.rob.body_mut(slot).obl_safe_sent = true;
                self.obl_unsafe.clear(slot);
                self.progressed = true;
                if self.obs.is_some() {
                    let pc = self.rob.body(slot).pc;
                    if let Some(o) = self.obs.as_deref_mut() {
                        // Before the FSM consumes Safe, so that validations /
                        // exposures / predictor training trace strictly after.
                        o.emit(self.now, seq, pc, ObsEvent::OblSafe);
                    }
                }
                self.on_fsm_event(mem, slot, OblEvent::Safe);
                if self.rob.is_live(slot, seq)
                    && self.rob.body(slot).obl.as_ref().is_some_and(OblLdFsm::squashed)
                {
                    break;
                }
            }
        }

        // 3. FP SDO fails whose operands untainted: squash + re-execute.
        if self.fp_failed.any() {
            self.rob.collect_mask(&self.fp_failed, &mut candidates);
            for &(slot, seq) in &candidates {
                if !self.rob.is_live(slot, seq) {
                    break;
                }
                if self.rob.body(slot).status != Status::Done {
                    continue; // DO attempt still in flight
                }
                if self.srcs_tainted(slot) {
                    continue;
                }
                self.progressed = true;
                self.stats.squashes.fp_fail += 1;
                let e = self.rob.body(slot);
                let pc = e.pc;
                let redirect = e.pc + 1;
                if let Some(p) = e.pdst {
                    self.regs.unwrite(p);
                }
                if let Some(o) = self.obs.as_deref_mut() {
                    o.emit(self.now, seq, pc, ObsEvent::Squash { cause: SquashCause::FpFail });
                }
                self.squash_after(seq);
                self.fetch_pc = redirect;
                // Re-execute on the slow path with the true result.
                self.fp_failed.clear(slot);
                self.done_bits.clear(slot);
                self.rob.body_mut(slot).status = Status::Executing;
                let (value, lat) = self.exec_fp(slot, true);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.emit(self.now, seq, pc, ObsEvent::FpTransmit { tainted: false, oblivious: false });
                }
                // The re-executed slow path occupies an FP unit (structural
                // contention is safe to reveal: the operands are untainted).
                let unit = self.fp_busy.iter_mut().min().expect("fp units exist");
                *unit = (*unit).max(self.now) + lat;
                self.schedule(self.now + lat, slot, EvKind::Exec { value: Some(value) });
                break;
            }
        }

        // 4. Deferred consistency squashes whose address untainted.
        if self.pending_squash.any() {
            self.rob.collect_mask(&self.pending_squash, &mut candidates);
            for &(slot, seq) in &candidates {
                if !self.rob.is_live(slot, seq) {
                    break;
                }
                if protected && self.addr_operand_tainted(slot) {
                    continue;
                }
                self.progressed = true;
                self.stats.squashes.consistency += 1;
                let pc = self.rob.body(slot).pc;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.emit(self.now, seq, pc, ObsEvent::Squash { cause: SquashCause::Consistency });
                }
                self.squash_from(seq);
                self.fetch_pc = pc;
                break;
            }
        }

        self.scratch_slots = candidates;
    }

    /// Applies a computed branch/jump resolution. Returns `true` if it
    /// squashed.
    fn apply_resolution(&mut self, slot: u32) -> bool {
        self.progressed = true;
        let seq = self.rob.seq_of(slot);
        let e = self.rob.body(slot);
        let (taken, next_pc) = e.outcome.expect("resolved");
        let pc = e.pc;
        let pred_taken = e.pred_taken;
        let pred_target = e.pred_target;
        let is_cond = e.inst.is_cond_branch();
        let is_indirect = e.inst.is_indirect();

        if (is_cond || is_indirect) && self.obs.is_some() {
            let tainted = self.srcs_tainted(slot);
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(self.now, seq, pc, ObsEvent::PredictorUpdate { tainted });
            }
        }
        if is_cond {
            self.stats.branches += 1;
            self.bp.resolve(pc, taken, pred_taken);
        }
        if is_indirect {
            self.btb.update(pc, next_pc);
        }
        // Resolution applied: the entry stops blocking visibility and
        // leaves the resolve-candidate set; done-ness catches up.
        self.ctrl_unresolved.clear(slot);
        self.resolve_ready.clear(slot);
        if self.rob.body(slot).status == Status::Done {
            self.done_bits.set(slot);
        }

        if next_pc != pred_target {
            self.stats.mispredicts += 1;
            self.stats.squashes.branch += 1;
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(self.now, seq, pc, ObsEvent::Squash { cause: SquashCause::Branch });
            }
            self.squash_after(seq);
            self.fetch_pc = next_pc;
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Squash machinery
    // ------------------------------------------------------------------

    /// Squashes every instruction strictly younger than `seq`.
    fn squash_after(&mut self, seq: u64) {
        self.squash_killing_from(seq + 1);
    }

    /// Squashes `seq` and everything younger (re-fetch from its pc).
    fn squash_from(&mut self, seq: u64) {
        self.squash_killing_from(seq);
    }

    fn squash_killing_from(&mut self, first_killed: u64) {
        let old_len = self.rob.len();
        while let Some(back) = self.rob.back_slot() {
            let seq = self.rob.seq_of(back);
            if seq < first_killed {
                break;
            }
            let slot = self.rob.pop_back();
            debug_assert_eq!(slot, back);
            // Per-slot queue state; the flag bits are shed in bulk below.
            if self.iq.contains(slot) {
                self.iq.remove(slot);
            }
            self.iq_unready[slot as usize] = 0;
            self.stats.squashed_insts += 1;
            if let Some(t) = self.trace.as_mut() {
                t.squash(seq, self.now);
            }
            // Walk-based RAT recovery: the RAT only ever changes at
            // rename and the killed entries are the youngest suffix, so
            // undoing each rename youngest-first lands on exactly the
            // pre-`first_killed` mapping — no per-dispatch snapshot
            // needed. Multiple killed writers of one arch reg resolve
            // correctly because the oldest undo is applied last.
            let e = self.rob.body(slot);
            if let Some(old) = e.old_pdst {
                let arch =
                    e.inst.int_dst().map(|r| r.index()).or_else(|| e.inst.fp_dst().map(|r| r.index()));
                debug_assert!(arch.is_some(), "old_pdst implies an architectural destination");
                if let Some(arch) = arch {
                    self.regs.unrename(old.class, arch, old);
                }
            }
            if let Some(p) = self.rob.body(slot).pdst {
                self.regs.release(p);
            }
        }
        // A dead slot must shed every flag bit immediately — a stale bit
        // would pollute sweep masks (or the reused slot). The killed
        // entries are a contiguous window suffix, so clear whole word
        // ranges instead of 8 read-modify-writes per slot, then restore
        // the ready-count invariant by popcount.
        let new_len = self.rob.len();
        if new_len < old_len {
            for (a, b) in self.rob.slot_ranges(new_len, old_len) {
                self.done_bits.clear_range(a, b);
                self.ctrl_unresolved.clear_range(a, b);
                self.load_unperformed.clear_range(a, b);
                self.pending_squash.clear_range(a, b);
                self.fp_failed.clear_range(a, b);
                self.resolve_ready.clear_range(a, b);
                self.obl_unsafe.clear_range(a, b);
                self.iq_ready.clear_range(a, b);
            }
            self.iq_ready_count = self.iq_ready.count();
        }
        self.lq.retain(|&(_, s)| s < first_killed);
        self.sq.retain(|&(_, s)| s < first_killed);
        self.fetch_q.clear();
        self.fetch_halted = false;
    }

    // ------------------------------------------------------------------
    // Commit stage
    // ------------------------------------------------------------------

    fn commit_stage(&mut self, mem: &mut MemorySystem) {
        for _ in 0..self.cfg.width {
            let Some(head) = self.rob.head_slot() else { break };
            // An entry can be `done` yet still owe a deferred action that
            // must run in `resolve_stage` first (same-cycle multi-commit
            // could otherwise retire it together with its taint producer).
            if self.fp_failed.get(head) || self.pending_squash.get(head) {
                break;
            }
            if !self.done_bits.get(head) {
                // Figure 7 accounting: head blocked awaiting validation.
                if self.rob.body(head).obl.as_ref().is_some_and(OblLdFsm::awaiting_validation) {
                    self.stats.obl.validation_stall_cycles += 1;
                }
                break;
            }
            let seq = self.rob.seq_of(head);
            let e = self.rob.body(head);
            let pc = e.pc;
            let class = e.inst.class();
            let addr = e.addr;
            let store_data = e.store_data;
            let width_bytes = e.width_bytes;
            let old_pdst = e.old_pdst;
            let slot = self.rob.pop_front();
            debug_assert_eq!(slot, head);
            self.clear_slot_state(slot);
            self.progressed = true;
            self.stats.committed += 1;
            if let Some(log) = self.commit_pcs.as_mut() {
                log.push(pc);
            }
            if let Some(t) = self.trace.as_mut() {
                t.commit(seq, self.now);
            }
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(self.now, seq, pc, ObsEvent::Commit);
            }
            match class {
                OpClass::Halt => {
                    self.halted = true;
                    return;
                }
                OpClass::Store => {
                    self.stats.committed_stores += 1;
                    let addr = addr.expect("store address computed");
                    let data = store_data.expect("store data computed");
                    mem.store(self.id, addr, data, width_bytes, self.now);
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.emit(
                            self.now,
                            seq,
                            pc,
                            ObsEvent::MemAccess { line: addr / 64, op: MemOp::Store, tainted: false },
                        );
                    }
                    self.sq.retain(|&(_, s)| s != seq);
                }
                OpClass::Load => {
                    self.stats.committed_loads += 1;
                    self.lq.retain(|&(_, s)| s != seq);
                }
                _ => {}
            }
            if let Some(old) = old_pdst {
                self.regs.release(old);
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue stage
    // ------------------------------------------------------------------

    fn fu_for(class: OpClass) -> fn(&mut FuBudget) -> &mut u32 {
        match class {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump => |b| &mut b.alu,
            OpClass::IntMul | OpClass::IntDiv => |b| &mut b.muldiv,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => |b| &mut b.fp,
            OpClass::Load | OpClass::Store => |b| &mut b.mem,
            OpClass::Nop | OpClass::Halt => |b| &mut b.alu,
        }
    }

    /// Claims a non-pipelined unit for `latency` cycles; `true` iff one
    /// was free this cycle.
    fn claim_unit(busy: &mut [Cycle], now: Cycle, latency: Cycle) -> bool {
        match busy.iter_mut().find(|b| **b <= now) {
            Some(slot) => {
                *slot = now + latency;
                true
            }
            None => false,
        }
    }

    fn issue_stage(&mut self, mem: &mut MemorySystem) {
        // Parked STT-delayed transmitters rejoin the ready set the
        // moment their taint source becomes visible — the frontier only
        // moves in resolve/commit/squash, all of which ran before this
        // stage, so an unparked entry issues the same cycle it would
        // have under per-cycle re-attempts.
        self.unpark_visible();
        // Exact skip gate: the IQ holds only live `Waiting` entries
        // (squashes purge it, issues remove from it), so with no ready
        // entry the walk below would issue nothing, tick no counter and
        // leave the queue untouched. Ready-but-retrying entries (busy
        // unit, SQ conflict, MSHR-full, DRAM-prediction / oracle-driven
        // SDO probes) keep their ready bit, keeping the stage live so
        // retry accounting and per-cycle predictor probes still happen
        // exactly as before.
        if self.iq_ready_count == 0 {
            return;
        }
        let mut budget = FuBudget {
            alu: self.cfg.fus.int_alu,
            muldiv: self.cfg.fus.int_muldiv,
            fp: self.cfg.fus.fp,
            mem: self.cfg.fus.mem_ports,
        };
        let mut issued_count = 0usize;

        // Attempt only the ready entries, oldest-first. `iq_ready` holds
        // exactly the queued entries whose unready count hit zero, and
        // `collect_mask` yields them in window (= dispatch = age) order —
        // the same order and the same attempt set as a walk over the
        // whole queue that skips unready entries, without touching the
        // waiting majority. Issue helpers never change other entries'
        // readiness mid-scan (writebacks happen at event delivery), so a
        // snapshot of the mask is exact.
        let mut ready = std::mem::take(&mut self.scratch_slots);
        self.rob.collect_mask(&self.iq_ready, &mut ready);
        for &(slot, seq) in &ready {
            if issued_count >= self.cfg.width {
                // Width exhausted: the rest stays queued, unattempted.
                break;
            }
            debug_assert!(self.rob.is_live(slot, seq), "IQ holds only live entries");
            debug_assert_eq!(self.rob.body(slot).status, Status::Waiting);
            debug_assert!(
                self.rob.body(slot).psrcs.iter().flatten().all(|p| self.regs.is_ready(*p)),
                "wakeup-list readiness diverged from the register file"
            );
            let class = self.rob.body(slot).inst.class();
            let fu = Self::fu_for(class);
            if *fu(&mut budget) == 0 {
                continue;
            }
            let issue_ok = match class {
                OpClass::Load => self.try_issue_load(mem, slot, seq),
                OpClass::Store => {
                    self.issue_store(slot);
                    true
                }
                OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => {
                    self.try_issue_fp_transmit(slot)
                }
                _ => self.issue_simple(slot),
            };
            if issue_ok {
                *fu(&mut budget) -= 1;
                issued_count += 1;
                self.iq_ready.clear(slot);
                self.iq_ready_count -= 1;
                self.iq.remove(slot);
                self.progressed = true;
                if let Some(t) = self.trace.as_mut() {
                    t.issue(seq, self.now);
                }
                if self.obs.is_some() {
                    let pc = self.rob.body(slot).pc;
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.emit(self.now, seq, pc, ObsEvent::Issue);
                    }
                }
            }
        }
        self.scratch_slots = ready;
    }

    fn src_value(&self, e: &DynInst, idx: usize) -> u64 {
        e.psrcs[idx].map_or(0, |p| self.regs.value(p))
    }

    fn issue_simple(&mut self, slot: u32) -> bool {
        let e = self.rob.body(slot);
        let pc = e.pc;
        let inst = e.inst;
        let s0 = self.src_value(e, 0);
        let s1 = self.src_value(e, 1);
        let f0 = f64::from_bits(self.src_value(e, 2));
        let f1 = f64::from_bits(self.src_value(e, 3));
        let lat = &self.cfg.lat;

        let (value, latency, outcome) = match inst {
            Instruction::Alu { op, .. } => (Some(op.eval(s0, s1)), self.alu_latency(op), None),
            Instruction::AluImm { op, imm, .. } => {
                (Some(op.eval(s0, imm as u64)), self.alu_latency(op), None)
            }
            Instruction::Li { imm, .. } => (Some(imm as u64), lat.int_alu, None),
            Instruction::Branch { cond, target, .. } => {
                let taken = cond.eval(s0, s1);
                let next = if taken { target } else { pc + 1 };
                (None, lat.int_alu, Some((taken, next)))
            }
            Instruction::Jal { target, .. } => (Some(pc + 1), lat.int_alu, Some((true, target))),
            Instruction::Jalr { offset, .. } => {
                (Some(pc + 1), lat.int_alu, Some((true, s0.wrapping_add(offset as u64))))
            }
            Instruction::Fpu { op, .. } => {
                // Non-transmit FP (add/sub) — always data-oblivious timing.
                (Some(op.eval(f0, f1).to_bits()), lat.fp_add, None)
            }
            Instruction::FMvToInt { .. } => (Some(self.src_value(e, 2)), lat.int_alu, None),
            Instruction::FMvFromInt { .. } => (Some(s0), lat.int_alu, None),
            Instruction::Nop | Instruction::Halt => (None, lat.int_alu, None),
            Instruction::Load { .. }
            | Instruction::Store { .. }
            | Instruction::FLoad { .. }
            | Instruction::FStore { .. } => unreachable!("memory ops use their own paths"),
        };

        // Long-latency integer ops occupy their (non-pipelined) unit.
        if matches!(inst.class(), OpClass::IntMul | OpClass::IntDiv)
            && !Self::claim_unit(&mut self.muldiv_busy, self.now, latency)
        {
            return false; // unit busy: stay in the issue queue, retry
        }
        let e = self.rob.body_mut(slot);
        e.status = Status::Executing;
        e.outcome = outcome;
        self.schedule(self.now + latency, slot, EvKind::Exec { value });
        true
    }

    fn alu_latency(&self, op: sdo_isa::AluOp) -> Cycle {
        if op.is_mul() {
            self.cfg.lat.int_mul
        } else if op.is_div() {
            self.cfg.lat.int_div
        } else {
            self.cfg.lat.int_alu
        }
    }

    /// Whether the op ties up its FP unit for its whole latency: divides
    /// and square roots always; multiplies only on the (subnormal) slow
    /// microcoded path. Adds and fast multiplies are fully pipelined.
    fn fp_unit_nonpipelined(&self, op: FpuOp, slow: bool) -> bool {
        matches!(op, FpuOp::Div | FpuOp::Sqrt) || slow
    }

    fn fp_latency(&self, op: FpuOp, slow: bool) -> Cycle {
        let base = match op {
            FpuOp::Add | FpuOp::Sub => self.cfg.lat.fp_add,
            FpuOp::Mul => self.cfg.lat.fp_mul,
            FpuOp::Div => self.cfg.lat.fp_div,
            FpuOp::Sqrt => self.cfg.lat.fp_sqrt,
        };
        if slow {
            base + self.cfg.lat.fp_subnormal_penalty
        } else {
            base
        }
    }

    /// Computes an FP transmit op's true value and (class-dependent)
    /// latency; `force_slow` charges the subnormal path.
    fn exec_fp(&self, slot: u32, force_slow: bool) -> (u64, Cycle) {
        let e = self.rob.body(slot);
        let Instruction::Fpu { op, .. } = e.inst else { unreachable!("fp transmit") };
        let a = f64::from_bits(self.src_value(e, 2));
        let b = f64::from_bits(self.src_value(e, 3));
        let slow = force_slow
            || a.is_subnormal()
            || (op != FpuOp::Sqrt && b.is_subnormal());
        (op.eval(a, b).to_bits(), self.fp_latency(op, slow))
    }

    fn try_issue_fp_transmit(&mut self, slot: u32) -> bool {
        let tainted = self.srcs_tainted(slot);
        let protect = self.sec.protection.protects_fp();
        match (self.sec.protection, tainted && protect) {
            (Protection::Sdo(_), true) => {
                // FP SDO: execute the predict-normal DO variant (fast
                // latency and fast-path unit occupancy regardless of
                // operands — data-oblivious).
                let e = self.rob.body(slot);
                let Instruction::Fpu { op, .. } = e.inst else { unreachable!() };
                let a = f64::from_bits(self.src_value(e, 2));
                let b = f64::from_bits(self.src_value(e, 3));
                let lat = self.fp_latency(op, false);
                if self.fp_unit_nonpipelined(op, false)
                    && !Self::claim_unit(&mut self.fp_busy, self.now, lat)
                {
                    return false;
                }
                let r: DoResult<f64> = fp_do_execute(op, a, b);
                self.stats.fp_sdo_issued += 1;
                let (value, failed) = match r.presult {
                    Some(v) => (v.to_bits(), false),
                    None => (0u64, true),
                };
                if self.obs.is_some() {
                    let pc = self.rob.body(slot).pc;
                    let seq = self.rob.seq_of(slot);
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.emit(self.now, seq, pc, ObsEvent::FpTransmit { tainted: true, oblivious: true });
                    }
                }
                self.rob.body_mut(slot).status = Status::Executing;
                if failed {
                    self.fp_failed.set(slot);
                }
                self.schedule(self.now + lat, slot, EvKind::Exec { value: Some(value) });
                true
            }
            (Protection::Stt { .. }, true) => {
                // Delay until operands untaint.
                if !self.rob.body(slot).delay_counted {
                    self.rob.body_mut(slot).delay_counted = true;
                    self.stats.delayed_fp += 1;
                }
                let seq = self.rob.seq_of(slot);
                self.park(slot, seq);
                false
            }
            _ => {
                // Unsafe, STT{ld}, or untainted operands: execute with the
                // operand-dependent latency AND unit occupancy (the
                // covert channel the configurations above close).
                let e = self.rob.body(slot);
                let Instruction::Fpu { op, .. } = e.inst else { unreachable!() };
                let a = f64::from_bits(self.src_value(e, 2));
                let slow = a.is_subnormal()
                    || (op != FpuOp::Sqrt && f64::from_bits(self.src_value(e, 3)).is_subnormal());
                let (value, lat) = self.exec_fp(slot, false);
                if self.fp_unit_nonpipelined(op, slow)
                    && !Self::claim_unit(&mut self.fp_busy, self.now, lat)
                {
                    return false;
                }
                if self.obs.is_some() {
                    let pc = self.rob.body(slot).pc;
                    let seq = self.rob.seq_of(slot);
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.emit(self.now, seq, pc, ObsEvent::FpTransmit { tainted, oblivious: false });
                    }
                }
                self.rob.body_mut(slot).status = Status::Executing;
                self.schedule(self.now + lat, slot, EvKind::Exec { value: Some(value) });
                true
            }
        }
    }

    fn issue_store(&mut self, slot: u32) {
        let e = self.rob.body(slot);
        let (base, offset, width) = e.inst.mem_operands().expect("store");
        let _ = base;
        let addr = self.src_value(e, if e.inst.int_srcs()[1].is_some() { 1 } else { 0 })
            .wrapping_add(offset as u64);
        // Data: integer stores read src slot 0; FP stores read fp slot 2.
        let data = match e.inst {
            Instruction::Store { .. } => self.src_value(e, 0),
            Instruction::FStore { .. } => self.src_value(e, 2),
            _ => unreachable!(),
        };
        let e = self.rob.body_mut(slot);
        e.addr = Some(addr);
        e.store_data = Some(data);
        e.width_bytes = width.bytes();
        e.status = Status::Executing;
        self.schedule(self.now + 1, slot, EvKind::Exec { value: None });
    }

    /// Store-queue search for an older store overlapping `addr`.
    /// `Ok(Some(value))`: full-cover forward. `Ok(None)`: no overlap.
    /// `Err(())`: must wait (unknown older address or partial overlap).
    fn sq_lookup(&self, seq: u64, addr: u64, width: u64) -> Result<Option<u64>, ()> {
        for &(s_slot, s_seq) in self.sq.iter().rev() {
            if s_seq >= seq {
                continue;
            }
            let s = self.rob.body(s_slot);
            let Some(s_addr) = s.addr else { return Err(()) };
            let s_width = s.width_bytes;
            let overlap = addr < s_addr + s_width && s_addr < addr + width;
            if !overlap {
                continue;
            }
            let covers = s_addr <= addr && addr + width <= s_addr + s_width;
            if !covers || s.store_data.is_none() {
                return Err(());
            }
            let shift = 8 * (addr - s_addr);
            let data = s.store_data.expect("checked") >> shift;
            return Ok(Some(data));
        }
        // Any older store with an unknown address blocks (conservative
        // memory-dependence policy, see DESIGN.md).
        for &(s_slot, s_seq) in &self.sq {
            if s_seq < seq && self.rob.body(s_slot).addr.is_none() {
                return Err(());
            }
        }
        Ok(None)
    }

    fn try_issue_load(&mut self, mem: &mut MemorySystem, slot: u32, seq: u64) -> bool {
        let e = self.rob.body(slot);
        let (_, offset, width) = e.inst.mem_operands().expect("load");
        let addr = self.src_value(e, 0).wrapping_add(offset as u64);
        let width_bytes = width.bytes();
        {
            let e = self.rob.body_mut(slot);
            e.addr = Some(addr);
            e.width_bytes = width_bytes;
        }

        // Memory ordering / store-to-load forwarding.
        let forwarded = match self.sq_lookup(seq, addr, width_bytes) {
            Err(()) => return false, // retry next cycle
            Ok(f) => f,
        };

        let tainted = self.addr_operand_tainted(slot);
        match self.sec.protection {
            Protection::Unsafe => {
                self.issue_normal_load(mem, slot, addr, forwarded);
                true
            }
            Protection::Stt { .. } => {
                if tainted {
                    self.note_delayed(slot);
                    self.park(slot, seq);
                    false
                } else {
                    self.finish_delay_accounting(slot);
                    self.issue_normal_load(mem, slot, addr, forwarded);
                    true
                }
            }
            Protection::Sdo(sdo) => {
                if !tainted {
                    self.finish_delay_accounting(slot);
                    self.issue_normal_load(mem, slot, addr, forwarded);
                    return true;
                }
                // Predict a level from the (public) PC.
                let oracle = mem.residency(self.id, addr);
                let mut level = self.predictor.predict(self.rob.body(slot).pc, oracle);
                if level == CacheLevel::Dram && !sdo.allow_dram_prediction {
                    level = CacheLevel::L3;
                }
                if level == CacheLevel::Dram {
                    // Revert to STT delay (Section VI-B).
                    let now = self.now;
                    let e = self.rob.body_mut(slot);
                    let newly = !e.delay_counted;
                    e.delay_counted = true;
                    if e.delayed_since.is_none() {
                        e.delayed_since = Some(now);
                    }
                    if newly {
                        self.stats.obl.dram_predictions += 1;
                        self.stats.delayed_loads += 1;
                    }
                    return false;
                }
                match mem.obl_lookup(self.id, addr, level, self.now) {
                    Err(OblReject::MshrFull) => {
                        self.stats.obl.mshr_retries += 1;
                        false
                    }
                    Ok(lookup) => {
                        self.stats.obl.issued += 1;
                        if self.obs.is_some() {
                            let pc = self.rob.body(slot).pc;
                            let depth = level.depth();
                            if let Some(o) = self.obs.as_deref_mut() {
                                o.emit(self.now, seq, pc, ObsEvent::OblProbe { level: depth });
                            }
                        }
                        if lookup.success() {
                            self.stats.obl.success += 1;
                        } else {
                            self.stats.obl.fail += 1;
                            if !lookup.tlb_hit {
                                self.stats.obl.tlb_probe_fails += 1;
                            }
                        }
                        if let Some(fwd) = forwarded {
                            // SQ forwarding: the lookup ran for timing; the
                            // load completes from the SQ at B, no
                            // validation needed (Section V-C3).
                            self.stats.obl.sq_forwarded += 1;
                            let e = self.rob.body_mut(slot);
                            e.sq_forwarded = true;
                            e.status = Status::Executing;
                            self.schedule(lookup.complete_at, slot, EvKind::LoadDone { value: fwd });
                            return true;
                        }
                        let pc = self.rob.body(slot).pc;
                        let exposure_eligible = self.exposure_condition(seq);
                        let fsm = OblLdFsm::new(pc, level, exposure_eligible, sdo.early_forward);
                        let e = self.rob.body_mut(slot);
                        e.obl = Some(fsm);
                        e.status = Status::Executing;
                        // The load enters the resolve stage's Safe-event
                        // candidate set until its address untaints.
                        self.obl_unsafe.set(slot);
                        for r in &lookup.responses {
                            self.schedule(
                                r.at,
                                slot,
                                EvKind::OblResp {
                                    level: r.level,
                                    hit: r.hit,
                                    value: r.hit.then(|| lookup.value.expect("hit has data")),
                                },
                            );
                        }
                        true
                    }
                }
            }
        }
    }

    /// Approximation of InvisiSpec's exposure condition: the load cannot
    /// be reordered with older memory operations if none are in flight.
    fn exposure_condition(&self, seq: u64) -> bool {
        let older_store = self.sq.iter().any(|&(_, s)| s < seq);
        let older_load_incomplete = self
            .lq
            .iter()
            .filter(|&&(_, s)| s < seq)
            .any(|&(l_slot, _)| !self.done_bits.get(l_slot));
        !older_store && !older_load_incomplete
    }

    fn note_delayed(&mut self, slot: u32) {
        let now = self.now;
        let e = self.rob.body_mut(slot);
        let newly = !e.delay_counted;
        e.delay_counted = true;
        if e.delayed_since.is_none() {
            e.delayed_since = Some(now);
        }
        if newly {
            self.stats.delayed_loads += 1;
        }
    }

    fn finish_delay_accounting(&mut self, slot: u32) {
        if let Some(since) = self.rob.body_mut(slot).delayed_since.take() {
            self.stats.delay_cycles += self.now - since;
        }
    }

    fn issue_normal_load(&mut self, mem: &mut MemorySystem, slot: u32, addr: u64, forwarded: Option<u64>) {
        let e = self.rob.body_mut(slot);
        e.status = Status::Executing;
        let was_dram_predicted = e.delay_counted && matches!(self.sec.protection, Protection::Sdo(_));
        if let Some(value) = forwarded {
            self.rob.body_mut(slot).sq_forwarded = true;
            // Store-to-load forwarding latency ≈ L1 hit.
            let at = self.now + self.cfg.lat.int_alu + 1;
            self.schedule(at, slot, EvKind::LoadDone { value });
            return;
        }
        let res = mem.load(self.id, addr, self.now);
        if self.obs.is_some() {
            let pc = self.rob.body(slot).pc;
            let seq = self.rob.seq_of(slot);
            let tainted = self.addr_operand_tainted(slot);
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(
                    self.now,
                    seq,
                    pc,
                    ObsEvent::MemAccess { line: addr / 64, op: MemOp::Load, tainted },
                );
            }
        }
        self.schedule(res.complete_at, slot, EvKind::LoadDone { value: res.value });
        if was_dram_predicted {
            // The location predictor said DRAM and the load reverted to
            // delayed execution; it is untainted now, so training with the
            // observed level is safe — and necessary, or the predictor
            // would never escape a DRAM rut once the data becomes
            // cache-resident.
            let pc = self.rob.body(slot).pc;
            if self.obs.is_some() {
                let seq = self.rob.seq_of(slot);
                let tainted = self.addr_operand_tainted(slot);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.emit(self.now, seq, pc, ObsEvent::PredictorUpdate { tainted });
                }
            }
            self.predictor.update(pc, res.served_by.level());
            self.stats.record_prediction(CacheLevel::Dram.depth(), res.served_by.level().depth());
        }
        let _: ServedBy = res.served_by;
    }

    // ------------------------------------------------------------------
    // Dispatch (rename) stage
    // ------------------------------------------------------------------

    fn dispatch_stage(&mut self) {
        for _ in 0..self.cfg.width {
            let Some(front) = self.fetch_q.front() else { break };
            if front.ready_at > self.now {
                break;
            }
            if self.rob.len() >= self.cfg.rob_entries || self.iq.len() >= self.cfg.iq_entries {
                break;
            }
            let inst = front.inst;
            if inst.is_load() && self.lq.len() >= self.cfg.lq_entries {
                break;
            }
            if inst.is_store() && self.sq.len() >= self.cfg.sq_entries {
                break;
            }
            let needs_int = inst.int_dst().is_some();
            let needs_fp = inst.fp_dst().is_some();
            if (needs_int && self.regs.free_count(RegClass::Int) == 0)
                || (needs_fp && self.regs.free_count(RegClass::Fp) == 0)
            {
                break;
            }

            let f = self.fetch_q.pop_front().expect("non-empty");
            self.progressed = true;
            let seq = self.next_seq;
            self.next_seq += 1;

            // Rename sources: integer in slots 0-1, FP in slots 2-3.
            let mut psrcs = [None; 4];
            let int_srcs = inst.int_srcs();
            for (i, r) in int_srcs.iter().enumerate() {
                psrcs[i] = r.map(|r| self.regs.lookup_int(r));
            }
            let fp_srcs = inst.fp_srcs();
            for (i, r) in fp_srcs.iter().enumerate() {
                psrcs[2 + i] = r.map(|r| self.regs.lookup_fp(r));
            }

            // YRoT: max over sources, plus self for loads.
            let mut yrot: Option<u64> =
                psrcs.iter().flatten().filter_map(|p| self.regs.yrot(*p)).max();
            if inst.is_load() {
                yrot = Some(yrot.map_or(seq, |y| y.max(seq)));
            }

            // Rename destination.
            let (pdst, old_pdst) = if let Some(d) = inst.int_dst() {
                let (n, o) = self.regs.alloc(RegClass::Int, d.index()).expect("checked free");
                (Some(n), Some(o))
            } else if let Some(d) = inst.fp_dst() {
                let (n, o) = self.regs.alloc(RegClass::Fp, d.index()).expect("checked free");
                (Some(n), Some(o))
            } else {
                (None, None)
            };
            if let Some(p) = pdst {
                self.regs.set_yrot(p, yrot);
            }

            let class = inst.class();
            let trivially_done = matches!(class, OpClass::Nop | OpClass::Halt);
            let entry = DynInst {
                pc: f.pc,
                inst,
                status: if trivially_done { Status::Done } else { Status::Waiting },
                pdst,
                old_pdst,
                psrcs,
                pred_taken: f.pred_taken,
                pred_target: f.pred_target,
                outcome: None,
                addr: None,
                store_data: None,
                width_bytes: 8,
                delayed_since: None,
                delay_counted: false,
                obl: None,
                obl_safe_sent: false,
                obl_first_hit_at: None,
                sq_forwarded: false,
            };
            if let Some(t) = self.trace.as_mut() {
                t.dispatch(seq, entry.pc, entry.inst, self.now);
            }
            if let Some(o) = self.obs.as_deref_mut() {
                o.emit(self.now, seq, entry.pc, ObsEvent::Dispatch);
            }
            let slot = self.rob.push_back(seq, entry);
            if trivially_done {
                self.done_bits.set(slot);
            }
            if inst.is_cond_branch() || inst.is_indirect() {
                // Resolution pending: blocks visibility until applied.
                self.ctrl_unresolved.set(slot);
            }
            if inst.is_load() {
                self.load_unperformed.set(slot);
                self.lq.push((slot, seq));
            }
            if inst.is_store() {
                self.sq.push((slot, seq));
            }
            if !trivially_done {
                // Register as a waiter on each not-yet-ready source; the
                // unready count reaching zero (at the producers' writeback)
                // marks the entry issue-ready. Duplicate sources register
                // twice and are decremented twice — the count stays exact.
                let mut unready: u8 = 0;
                for p in psrcs.iter().flatten() {
                    if !self.regs.is_ready(*p) {
                        self.regs.add_waiter(*p, slot, seq);
                        unready += 1;
                    }
                }
                self.iq_unready[slot as usize] = unready;
                if unready == 0 {
                    self.iq_ready.set(slot);
                    self.iq_ready_count += 1;
                }
                self.iq.push_back(slot);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch stage
    // ------------------------------------------------------------------

    fn fetch_stage(&mut self, mem: &mut MemorySystem) {
        if self.fetch_halted || self.now < self.fetch_stall_until {
            return;
        }
        let cap = self.cfg.width * (self.cfg.frontend_latency as usize + 2);
        for _ in 0..self.cfg.width {
            if self.fetch_q.len() >= cap {
                break;
            }
            // Every path below mutates: an icache probe/stall, a queue
            // push, or the fetch-halt latch.
            self.progressed = true;
            let pc = self.fetch_pc;
            // Instruction-cache timing: one check per text line (8
            // instructions); a miss stalls fetch until the line arrives.
            let text_line = sdo_mem::line_of(ITEXT_BASE + pc * 8);
            if self.last_fetch_line != Some(text_line) {
                let ready = mem.ifetch(self.id, text_line, self.now);
                self.last_fetch_line = Some(text_line);
                if ready > self.now {
                    self.fetch_stall_until = ready;
                    break;
                }
            }
            let inst = self.program.fetch(pc);
            self.stats.fetched += 1;
            let ready_at = self.now + self.cfg.frontend_latency;
            let mut pred_taken = false;
            let mut pred_target = pc + 1;
            let mut redirect = false;

            match inst {
                Instruction::Branch { target, .. } => {
                    pred_taken = self.bp.predict(pc);
                    if pred_taken {
                        pred_target = target;
                        redirect = true;
                    }
                }
                Instruction::Jal { dst, target } => {
                    pred_target = target;
                    pred_taken = true;
                    redirect = true;
                    if !dst.is_zero() {
                        self.ras.push(pc + 1);
                    }
                }
                Instruction::Jalr { dst, base, .. } => {
                    pred_taken = true;
                    redirect = true;
                    let is_return = dst.is_zero() && base == Reg::new(31);
                    pred_target = if is_return {
                        self.ras.pop().or_else(|| self.btb.lookup(pc)).unwrap_or(pc + 1)
                    } else {
                        self.btb.lookup(pc).unwrap_or(pc + 1)
                    };
                    if !dst.is_zero() {
                        self.ras.push(pc + 1);
                    }
                }
                Instruction::Halt => {
                    self.fetch_q.push_back(Fetched {
                        pc,
                        inst,
                        pred_taken: false,
                        pred_target: pc + 1,
                        ready_at,
                    });
                    self.fetch_halted = true;
                    return;
                }
                _ => {}
            }

            self.fetch_q.push_back(Fetched { pc, inst, pred_taken, pred_target, ready_at });
            self.fetch_pc = pred_target;
            if redirect {
                break; // one taken control transfer per fetch cycle
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SdoConfig;
    use sdo_isa::{Assembler, FReg, Interpreter, Reg};
    use sdo_mem::MemConfig;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }
    fn fr(i: u8) -> FReg {
        FReg::new(i)
    }

    fn all_configs() -> Vec<SecurityConfig> {
        let mut v = vec![SecurityConfig::unsafe_baseline()];
        for attack in AttackModel::ALL {
            for fp in [false, true] {
                v.push(SecurityConfig { protection: Protection::Stt { fp_transmitters: fp }, attack });
            }
            for kind in [
                PredictorKind::Static(CacheLevel::L1),
                PredictorKind::Static(CacheLevel::L2),
                PredictorKind::Static(CacheLevel::L3),
                PredictorKind::Hybrid,
                PredictorKind::Perfect,
            ] {
                v.push(SecurityConfig {
                    protection: Protection::Sdo(SdoConfig::with_predictor(kind)),
                    attack,
                });
            }
        }
        v
    }

    /// Runs `prog` under `sec` and returns the core (halted).
    fn run_with(prog: &Program, sec: SecurityConfig) -> (Core, MemorySystem) {
        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        mem.load_image(prog.data());
        let mut core = Core::new(0, CoreConfig::table_i(), sec, prog.clone());
        core.run(&mut mem, 2_000_000).expect("program should halt");
        (core, mem)
    }

    /// Differentially checks committed state against the golden model for
    /// every protection configuration.
    fn check_all_configs(prog: &Program) {
        let mut golden = Interpreter::new(prog);
        golden.run(5_000_000).expect("golden halts");
        for sec in all_configs() {
            let (core, mem) = run_with(prog, sec);
            assert_eq!(
                core.arch_int(),
                golden.int_regs(),
                "int state mismatch under {sec:?} for {}",
                prog.name()
            );
            assert_eq!(
                core.arch_fp(),
                golden.fp_regs(),
                "fp state mismatch under {sec:?} for {}",
                prog.name()
            );
            for (addr, byte) in golden.mem_snapshot() {
                assert_eq!(
                    mem.backing().read_byte(addr),
                    byte,
                    "memory mismatch at {addr:#x} under {sec:?}"
                );
            }
        }
    }

    #[test]
    fn alu_loop_matches_golden_everywhere() {
        let mut asm = Assembler::named("alu_loop");
        let (n, acc) = (r(1), r(2));
        asm.li(n, 50);
        let top = asm.here();
        asm.add(acc, acc, n);
        asm.muli(r(3), r(2), 3);
        asm.xor(r(4), r(3), n);
        asm.addi(n, n, -1);
        asm.bne(n, Reg::ZERO, top);
        asm.halt();
        check_all_configs(&asm.finish().unwrap());
    }

    #[test]
    fn load_store_program_matches_golden_everywhere() {
        let mut asm = Assembler::named("ldst");
        let base = r(1);
        asm.li(base, 0x1000);
        // Write then read back a small table, summing.
        let i = r(2);
        let sum = r(3);
        let tmp = r(4);
        asm.li(i, 8);
        let top = asm.here();
        asm.slli(tmp, i, 3);
        asm.add(tmp, tmp, base);
        asm.st(i, tmp, 0);
        asm.ld(r(5), tmp, 0);
        asm.add(sum, sum, r(5));
        asm.addi(i, i, -1);
        asm.bne(i, Reg::ZERO, top);
        asm.halt();
        check_all_configs(&asm.finish().unwrap());
    }

    /// The classic Spectre-shaped loop: every iteration loads a *bound*
    /// from a large, cache-hostile array and branches on it; while that
    /// slow branch is unresolved, a fast speculative access-load and a
    /// dependent transmit-load execute in its shadow. The access-load's
    /// output is tainted (it is speculative), so the dependent load has a
    /// tainted address and must delay (STT) or issue as an Obl-Ld (SDO).
    fn spec_window_program() -> Program {
        let mut asm = Assembler::named("spec_window");
        // Bounds array: one line per iteration, too large for the L1.
        let bounds = 0x10_0000u64;
        let iters = 150u64;
        // (values are all zero == bound check always passes)
        // Pointer ring, L1-resident after the first lap.
        let ring_base = 0x2000u64;
        let ring = 8u64;
        for k in 0..ring {
            asm.data_mut().set_word(ring_base + k * 64, ring_base + ((k + 1) % ring) * 64);
        }
        let (ptr, val, bptr, bound) = (r(1), r(2), r(3), r(4));
        asm.li(ptr, ring_base as i64);
        asm.li(bptr, bounds as i64);
        let iter = r(10);
        asm.li(iter, iters as i64);
        let top = asm.here();
        asm.ld(bound, bptr, 0); // slow: streams through 150 lines
        let skip = asm.label();
        asm.bne(bound, Reg::ZERO, skip); // unresolved while bound in flight
        asm.ld(val, ptr, 0); // access: output tainted while speculative
        asm.ld(ptr, val, 0); // transmitter: tainted address
        asm.add(r(7), r(7), val);
        asm.bind(skip);
        asm.addi(bptr, bptr, 512); // next bound line (stride 8 lines)
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn spec_window_matches_golden_everywhere() {
        check_all_configs(&spec_window_program());
    }

    /// Runs `prog` under `sec` with fast-forward toggled and occupancy
    /// observability on, so the comparison covers the bulk-sampled
    /// histograms too.
    fn run_ff(prog: &Program, sec: SecurityConfig, ff: bool) -> (Core, MemorySystem) {
        let mem_cfg = MemConfig::table_i();
        let mut mem = MemorySystem::new(mem_cfg, 1);
        mem.load_image(prog.data());
        let mut core = Core::new(0, CoreConfig::table_i(), sec, prog.clone());
        core.enable_obs(crate::ObsConfig::occupancy(), mem_cfg.l1.mshrs as usize);
        core.set_fast_forward(ff);
        core.run(&mut mem, 2_000_000).expect("program should halt");
        (core, mem)
    }

    /// The cycle-exactness invariant (DESIGN.md "Quiescence
    /// fast-forward"): with skipping on, every observable — final cycle,
    /// core statistics, architectural state, memory statistics, and the
    /// per-cycle occupancy histograms — must be identical to the
    /// cycle-stepped run, under every protection configuration.
    #[test]
    fn fast_forward_is_cycle_exact_everywhere() {
        let prog = spec_window_program();
        let mut total_skipped = 0;
        for sec in all_configs() {
            let (skip, skip_mem) = run_ff(&prog, sec, true);
            let (step, step_mem) = run_ff(&prog, sec, false);
            assert_eq!(step.skipped_cycles(), 0, "stepped run must not skip");
            assert_eq!(skip.now(), step.now(), "cycle count diverged under {sec:?}");
            assert_eq!(skip.stats(), step.stats(), "core stats diverged under {sec:?}");
            assert_eq!(skip.arch_int(), step.arch_int(), "int state diverged under {sec:?}");
            assert_eq!(skip.arch_fp(), step.arch_fp(), "fp state diverged under {sec:?}");
            assert_eq!(skip_mem.stats(), step_mem.stats(), "mem stats diverged under {sec:?}");
            assert_eq!(skip.obs(), step.obs(), "occupancy histograms diverged under {sec:?}");
            total_skipped += skip.skipped_cycles();
        }
        assert!(
            total_skipped > 0,
            "the spec-window program must exercise at least one quiescent skip"
        );
    }

    /// Fast-forward must actually engage on a memory-bound program: the
    /// spec-window kernel streams bound lines from DRAM, so a large
    /// share of its cycles are quiescent stalls.
    #[test]
    fn fast_forward_skips_dram_stalls() {
        let prog = spec_window_program();
        let (core, _) = run_ff(&prog, SecurityConfig::unsafe_baseline(), true);
        assert!(
            core.skipped_cycles() * 4 >= core.now(),
            "expected >=25% of cycles skipped on a DRAM-bound run, got {} of {}",
            core.skipped_cycles(),
            core.now()
        );
    }

    /// Regression for the Futuristic visibility approximation documented
    /// in `update_visibility`: once an Obl-Ld passes the visibility
    /// point in a *single-core* run, its validation can no longer
    /// mismatch — the value it forwarded is the value memory holds (own
    /// stores are handled by SQ forwarding, and there is no other core
    /// to race with). So no validation-mismatch squash may ever fire.
    #[test]
    fn futuristic_visibility_point_never_squashes_on_validation_single_core() {
        let prog = spec_window_program();
        let mut validations = 0;
        for kind in [
            PredictorKind::Static(CacheLevel::L1),
            PredictorKind::Static(CacheLevel::L2),
            PredictorKind::Static(CacheLevel::L3),
            PredictorKind::Hybrid,
            PredictorKind::Perfect,
        ] {
            let sec = SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(kind)),
                attack: AttackModel::Futuristic,
            };
            let (core, _) = run_with(&prog, sec);
            validations += core.stats().obl.validations;
            assert_eq!(
                core.stats().squashes.validation,
                0,
                "validation-mismatch squash after the visibility point under {kind:?}"
            );
        }
        assert!(validations > 0, "the kernel must actually exercise validations");
    }

    #[test]
    fn stt_delays_tainted_loads_and_costs_cycles() {
        let prog = spec_window_program();
        let (unsafe_core, _) = run_with(&prog, SecurityConfig::unsafe_baseline());
        let (stt_core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Spectre,
            },
        );
        assert!(stt_core.stats().delayed_loads > 0, "tainted loads must be delayed");
        assert_eq!(unsafe_core.stats().delayed_loads, 0);
        assert!(
            stt_core.stats().cycles > unsafe_core.stats().cycles,
            "STT ({}) should be slower than Unsafe ({})",
            stt_core.stats().cycles,
            unsafe_core.stats().cycles
        );
    }

    #[test]
    fn sdo_issues_obl_loads_and_beats_stt() {
        let prog = spec_window_program();
        let (stt_core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Spectre,
            },
        );
        let (sdo_core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Perfect)),
                attack: AttackModel::Spectre,
            },
        );
        assert!(sdo_core.stats().obl.issued > 0, "SDO must issue Obl-Lds");
        assert!(
            sdo_core.stats().cycles <= stt_core.stats().cycles,
            "SDO+Perfect ({}) should not be slower than STT ({})",
            sdo_core.stats().cycles,
            stt_core.stats().cycles
        );
    }

    #[test]
    fn static_l1_mispredictions_squash() {
        // Footprint larger than L1 so Static L1 predictions fail for the
        // tainted loads; fails surface as obl_fail squashes.
        let mut asm = Assembler::named("l1_hostile");
        let table = 0x10_0000u64;
        let n = 512u64; // 512 lines x 64B = 32KB+ footprint with stride 64
        for k in 0..n {
            asm.data_mut().set_word(table + k * 64, (k + 1) % n * 64 + table);
        }
        let (ptr, bptr, bound) = (r(1), r(3), r(4));
        asm.li(ptr, table as i64);
        asm.li(bptr, 0x40_0000);
        let iter = r(10);
        asm.li(iter, 600);
        let top = asm.here();
        asm.ld(bound, bptr, 0); // slow bound load opens the window
        let skip = asm.label();
        asm.bne(bound, Reg::ZERO, skip); // never taken
        asm.ld(r(6), ptr, 0); // access: output tainted while speculative
        asm.ld(r(7), r(6), 0); // tainted transmitter over a >L1 footprint
        asm.bind(skip);
        asm.ld(ptr, ptr, 0); // untainted ring walk (next line)
        asm.addi(bptr, bptr, 512);
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        let (core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Static(
                    CacheLevel::L1,
                ))),
                attack: AttackModel::Futuristic,
            },
        );
        assert!(core.stats().obl.fail > 0, "cold L1 predictions must fail");
        assert!(
            core.stats().squashes.obl_fail > 0,
            "futuristic model: fails discovered after forward squash"
        );
    }

    fn fp_program(subnormal: bool) -> Program {
        let mut asm = Assembler::named("fp_chain");
        let x = if subnormal { f64::MIN_POSITIVE / 16.0 } else { 1.5 };
        asm.data_mut().set_f64(0x100, x);
        asm.data_mut().set_f64(0x108, 2.0);
        let (bptr, bound) = (r(1), r(2));
        let bounds = 0x10_0000u64;
        asm.li(bptr, bounds as i64);
        asm.li(r(8), 0x100);
        let iter = r(10);
        asm.li(iter, 40);
        let top = asm.here();
        asm.ld(bound, bptr, 0); // slow bound load opens the window
        let skip = asm.label();
        asm.bne(bound, Reg::ZERO, skip); // never taken
        // FP loads execute speculatively in the branch shadow: their
        // outputs taint and the fmul is a tainted FP transmitter.
        asm.fld(fr(1), r(8), 0);
        asm.fld(fr(2), r(8), 8);
        asm.fmul(fr(3), fr(1), fr(2));
        asm.fst(fr(3), r(8), 16);
        asm.bind(skip);
        asm.addi(bptr, bptr, 512);
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn fp_programs_match_golden_everywhere() {
        check_all_configs(&fp_program(false));
        check_all_configs(&fp_program(true));
    }

    #[test]
    fn fp_sdo_fails_on_subnormal_and_recovers() {
        let sec = SecurityConfig {
            protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Perfect)),
            attack: AttackModel::Spectre,
        };
        let (normal_core, _) = run_with(&fp_program(false), sec);
        assert!(normal_core.stats().fp_sdo_issued > 0);
        assert_eq!(normal_core.stats().squashes.fp_fail, 0);

        let (sub_core, sub_mem) = run_with(&fp_program(true), sec);
        assert!(sub_core.stats().squashes.fp_fail > 0, "subnormal inputs must squash");
        // Result still functionally correct.
        let expected = (f64::MIN_POSITIVE / 16.0) * 2.0;
        assert_eq!(f64::from_bits(sub_mem.backing().read_word(0x110)), expected);
    }

    #[test]
    fn stt_fp_delays_fp_transmitters() {
        let (core, _) = run_with(
            &fp_program(false),
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: true },
                attack: AttackModel::Spectre,
            },
        );
        assert!(core.stats().delayed_fp > 0, "tainted fmul must be delayed under STT{{ld+fp}}");
    }

    #[test]
    fn futuristic_is_not_cheaper_than_spectre_for_stt() {
        let prog = spec_window_program();
        let (spectre, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Spectre,
            },
        );
        let (fut, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Futuristic,
            },
        );
        assert!(
            fut.stats().cycles >= spectre.stats().cycles,
            "futuristic ({}) must be at least as slow as spectre ({})",
            fut.stats().cycles,
            spectre.stats().cycles
        );
    }

    #[test]
    fn branch_mispredicts_recover() {
        // Data-dependent unpredictable branches.
        let mut asm = Assembler::named("branchy");
        for k in 0..64u64 {
            asm.data_mut().set_word(0x400 + k * 8, (k * 2654435761) >> 7 & 1);
        }
        let (i, base, acc) = (r(1), r(2), r(3));
        asm.li(base, 0x400);
        asm.li(i, 64);
        let top = asm.here();
        asm.slli(r(4), i, 3);
        asm.add(r(4), r(4), base);
        asm.ld(r(5), r(4), -8);
        let odd = asm.label();
        let join = asm.label();
        asm.bne(r(5), Reg::ZERO, odd);
        asm.addi(acc, acc, 1);
        asm.j(join);
        asm.bind(odd);
        asm.addi(acc, acc, 100);
        asm.bind(join);
        asm.addi(i, i, -1);
        asm.bne(i, Reg::ZERO, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        check_all_configs(&prog);
        let (core, _) = run_with(&prog, SecurityConfig::unsafe_baseline());
        assert!(core.stats().mispredicts > 0, "pattern should produce some mispredicts");
        assert!(core.stats().squashes.branch > 0);
    }

    #[test]
    fn function_calls_via_ras() {
        let mut asm = Assembler::named("calls");
        let ra = r(31);
        let func = asm.label();
        let iter = r(10);
        asm.li(iter, 20);
        let top = asm.here();
        asm.jal(ra, func);
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        asm.bind(func);
        asm.addi(r(1), r(1), 5);
        asm.jr(ra);
        check_all_configs(&asm.finish().unwrap());
    }

    #[test]
    fn store_to_load_forwarding_works() {
        let mut asm = Assembler::named("fwd");
        asm.li(r(1), 0x800);
        asm.li(r(2), 4242);
        asm.st(r(2), r(1), 0);
        asm.ld(r(3), r(1), 0); // forwarded from SQ
        asm.addi(r(3), r(3), 1);
        asm.halt();
        check_all_configs(&asm.finish().unwrap());
    }

    #[test]
    fn byte_accesses_match_golden() {
        let mut asm = Assembler::named("bytes");
        asm.data_mut().set_word(0x900, 0x1122_3344_5566_7788);
        asm.li(r(1), 0x900);
        asm.ldb(r(2), r(1), 0);
        asm.ldb(r(3), r(1), 7);
        asm.stb(r(3), r(1), 9);
        asm.ldb(r(4), r(1), 9);
        asm.halt();
        check_all_configs(&asm.finish().unwrap());
    }

    #[test]
    fn commit_trace_matches_golden_order() {
        let prog = spec_window_program();
        let mut golden = Interpreter::new(&prog);
        let trace = golden.run_trace(1_000_000).unwrap();
        let golden_pcs: Vec<u64> = trace.iter().map(|e| e.pc).collect();

        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        mem.load_image(prog.data());
        let mut core = Core::new(
            0,
            CoreConfig::table_i(),
            SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Hybrid)),
                attack: AttackModel::Futuristic,
            },
            prog.clone(),
        );
        core.record_commits();
        core.run(&mut mem, 2_000_000).unwrap();
        let got = core.commit_pcs().unwrap();
        // The final Halt commits in the core; the golden trace stops
        // before recording it.
        assert_eq!(&got[..got.len() - 1], &golden_pcs[..]);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut asm = Assembler::new();
        let top = asm.here();
        asm.j(top);
        let prog = asm.finish().unwrap();
        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        let mut core =
            Core::new(0, CoreConfig::table_i(), SecurityConfig::unsafe_baseline(), prog);
        let err = core.run(&mut mem, 1000).unwrap_err();
        assert_eq!(err, RunError::CycleLimit { max_cycles: 1000 });
    }

    #[test]
    fn tainted_branch_resolution_is_delayed_under_stt() {
        // A mispredicted branch whose predicate is a speculatively-loaded
        // value: STT must defer the squash until the producer untaints,
        // so the mispredicted branch commits later than under Unsafe.
        let mut asm = Assembler::named("tainted_branch");
        // Slow bound load opens a window; the shadowed load feeds a
        // 50/50-ish branch that WILL mispredict sometimes.
        asm.data_mut().set_word(0x2000, 1); // branch predicate source
        let (bptr, bound, val) = (r(1), r(2), r(3));
        asm.li(bptr, 0x40_0000);
        asm.li(r(9), 0x2000);
        let iter = r(10);
        asm.li(iter, 40);
        let esc = asm.label();
        let top = asm.here();
        asm.ld(bound, bptr, 0);
        asm.bne(bound, Reg::ZERO, esc); // never taken, slow predicate
        asm.ld(val, r(9), 0); // speculative access: output tainted
        let flip = asm.label();
        let join = asm.label();
        // Alternate the predicate source so the branch mispredicts.
        asm.andi(r(4), iter, 1);
        asm.st(r(4), r(9), 0);
        asm.beq(val, Reg::ZERO, flip); // tainted predicate, alternating
        asm.addi(r(7), r(7), 1);
        asm.j(join);
        asm.bind(flip);
        asm.addi(r(7), r(7), 2);
        asm.bind(join);
        asm.addi(bptr, bptr, 512);
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.bind(esc);
        asm.halt();
        let prog = asm.finish().unwrap();

        check_all_configs(&prog); // functional equivalence first
        let (unsafe_core, _) = run_with(&prog, SecurityConfig::unsafe_baseline());
        let (stt_core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Spectre,
            },
        );
        assert!(unsafe_core.stats().mispredicts > 5, "the pattern must mispredict");
        assert!(stt_core.stats().mispredicts > 5);
        assert!(
            stt_core.stats().cycles > unsafe_core.stats().cycles,
            "deferred resolutions (and delayed dependents) must cost cycles: {} vs {}",
            stt_core.stats().cycles,
            unsafe_core.stats().cycles
        );
    }

    #[test]
    fn obl_exposures_happen_for_l1_hits() {
        // A hot pointer ring: Obl-Ld L1 hits choose exposure over
        // validation (Section VI-A, field 3).
        let prog = spec_window_program();
        let (core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Perfect)),
                attack: AttackModel::Spectre,
            },
        );
        assert!(core.stats().obl.exposures > 0, "L1-hit Obl-Lds must expose, not validate");
    }

    #[test]
    fn partial_store_overlap_stalls_but_completes() {
        // A byte store under a word load to the same line: the load must
        // wait (no partial forwarding), and the final value is correct.
        let mut asm = Assembler::named("partial_overlap");
        asm.li(r(1), 0x800);
        asm.li(r(2), 0x1111_1111);
        asm.st(r(2), r(1), 0);
        asm.li(r(3), 0xff);
        asm.stb(r(3), r(1), 1); // overlaps the word
        asm.ld(r(4), r(1), 0); // partial overlap: waits for the store
        asm.halt();
        check_all_configs(&asm.finish().unwrap());
    }

    #[test]
    fn lq_capacity_limits_inflight_loads() {
        // More independent loads than LQ entries on the tiny config (4):
        // dispatch must stall but everything completes correctly.
        let mut asm = Assembler::named("lq_pressure");
        for k in 0..12u8 {
            asm.data_mut().set_word(0x1000 + u64::from(k) * 8, u64::from(k) + 1);
        }
        asm.li(r(1), 0x1000);
        for k in 0..12u8 {
            asm.ld(r(2 + k % 8), r(1), i64::from(k) * 8);
        }
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut golden = Interpreter::new(&prog);
        golden.run(100_000).unwrap();
        let golden_regs = golden.int_regs();
        let mut mem = MemorySystem::new(MemConfig::tiny(), 1);
        mem.load_image(prog.data());
        let mut core = Core::new(0, CoreConfig::tiny(), SecurityConfig::unsafe_baseline(), prog);
        core.run(&mut mem, 100_000).unwrap();
        assert_eq!(core.arch_int(), golden_regs);
    }

    #[test]
    fn tainted_fp_and_byte_loads_take_the_obl_path_correctly() {
        // FP-destination and byte-width loads with *tainted addresses*:
        // both must round through the Obl-Ld machinery (value widths,
        // FP register writeback) without corrupting state.
        let mut asm = Assembler::named("tainted_widths");
        asm.data_mut().set_word(0x2000, 0x3000); // pointer to data block
        asm.data_mut().set_f64(0x3000, 6.25);
        asm.data_mut().set_word(0x3008, 0xAB);
        let (bptr, bound, p) = (r(1), r(2), r(3));
        asm.li(bptr, 0x40_0000);
        asm.li(r(9), 0x2000);
        let iter = r(10);
        asm.li(iter, 25);
        let esc = asm.label();
        let top = asm.here();
        asm.ld(bound, bptr, 0); // slow window opener
        asm.bne(bound, Reg::ZERO, esc);
        asm.ld(p, r(9), 0); // access: p is tainted
        asm.fld(fr(1), p, 0); // tainted-address FP load (Obl-Ld, fp dest)
        asm.ldb(r(4), p, 8); // tainted-address byte load
        asm.fadd(fr(2), fr(2), fr(1));
        asm.add(r(7), r(7), r(4));
        asm.bind(esc);
        asm.addi(bptr, bptr, 512);
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        check_all_configs(&prog);
        // And the Obl path really was exercised.
        let (core, _) = run_with(
            &prog,
            SecurityConfig {
                protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Perfect)),
                attack: AttackModel::Spectre,
            },
        );
        assert!(core.stats().obl.issued > 10, "tainted fld/ldb must issue as Obl-Lds");
    }

    #[test]
    fn icache_misses_are_charged_for_large_code_footprints() {
        // A straight-line program spanning many text lines: the frontend
        // must stall on I-cache misses at least once per line.
        let mut asm = Assembler::named("big_code");
        for k in 0..512 {
            asm.addi(r(1), r(1), k % 7);
        }
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        mem.load_image(prog.data());
        let mut core =
            Core::new(0, CoreConfig::table_i(), SecurityConfig::unsafe_baseline(), prog);
        core.run(&mut mem, 1_000_000).unwrap();
        // 513 instructions / 8 per line = ~65 lines, each a cold miss.
        assert!(mem.stats().icache_misses >= 60, "got {}", mem.stats().icache_misses);

        // A hot loop spanning two text lines re-crosses the line boundary
        // every iteration: warm fetches must be L1I hits.
        let mut asm = Assembler::named("hot_loop");
        let iter = r(10);
        asm.li(iter, 300);
        let top = asm.here();
        for _ in 0..9 {
            asm.nop(); // push the back-edge onto a second line
        }
        asm.addi(iter, iter, -1);
        asm.bne(iter, Reg::ZERO, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        let mut core =
            Core::new(0, CoreConfig::table_i(), SecurityConfig::unsafe_baseline(), prog);
        core.run(&mut mem, 1_000_000).unwrap();
        assert!(
            mem.stats().icache_hits > 100,
            "looping code must hit the warm L1I, got {}",
            mem.stats().icache_hits
        );
    }

    #[test]
    fn pipeline_trace_records_ordered_lifecycles() {
        let prog = spec_window_program();
        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        mem.load_image(prog.data());
        let mut core = Core::new(
            0,
            CoreConfig::table_i(),
            SecurityConfig {
                protection: Protection::Stt { fp_transmitters: false },
                attack: AttackModel::Spectre,
            },
            prog,
        );
        core.enable_trace(400);
        core.run(&mut mem, 2_000_000).unwrap();
        let trace = core.trace().unwrap();
        assert_eq!(trace.len(), 400);
        let mut saw_committed = 0;
        for e in trace.entries() {
            assert!(e.issued.is_none() || e.issued.unwrap() >= e.dispatched);
            if let (Some(i), Some(c)) = (e.issued, e.completed) {
                assert!(c >= i, "complete before issue: {e:?}");
            }
            if let Some(commit) = e.committed {
                saw_committed += 1;
                assert!(e.squashed.is_none(), "committed and squashed: {e:?}");
                assert!(commit >= e.completed.unwrap_or(e.dispatched));
            }
        }
        assert!(saw_committed > 100, "most traced instructions commit");
        // STT shows up in the trace: some load has a big dispatch→issue gap.
        let delayed = trace.entries().any(|e| {
            e.inst.is_load() && e.issued.is_some_and(|i| i > e.dispatched + 20)
        });
        assert!(delayed, "STT delay must be visible in the trace");
        assert!(!trace.to_string().is_empty());
    }

    #[test]
    fn tiny_config_also_works() {
        let prog = spec_window_program();
        let mut golden = Interpreter::new(&prog);
        golden.run(5_000_000).unwrap();
        for sec in all_configs() {
            let mut mem = MemorySystem::new(MemConfig::tiny(), 1);
            mem.load_image(prog.data());
            let mut core = Core::new(0, CoreConfig::tiny(), sec, prog.clone());
            core.run(&mut mem, 5_000_000).expect("halts");
            assert_eq!(core.arch_int(), golden.int_regs(), "tiny mismatch under {sec:?}");
        }
    }

    /// Observability is a pure observer: timing and architectural state
    /// are bit-identical with it on or off, and what it records is
    /// consistent with the stats counters.
    #[test]
    fn obs_probe_observes_without_perturbing() {
        let prog = spec_window_program();
        let sec = SecurityConfig {
            protection: Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Hybrid)),
            attack: AttackModel::Spectre,
        };
        let (plain_core, _) = run_with(&prog, sec);

        let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
        mem.load_image(prog.data());
        let mut core = Core::new(0, CoreConfig::table_i(), sec, prog.clone());
        core.enable_obs(ObsConfig::full(1 << 20), MemConfig::table_i().l1.mshrs as usize);
        core.run(&mut mem, 2_000_000).expect("halts");

        assert_eq!(core.now(), plain_core.now(), "obs must not change timing");
        assert_eq!(core.stats(), plain_core.stats());
        assert_eq!(core.arch_int(), plain_core.arch_int());

        let obs = core.obs().expect("enabled");
        // One occupancy sample per cycle, in every histogram.
        assert_eq!(obs.rob.count(), core.now());
        assert_eq!(obs.mshr.count(), core.now());
        assert!(obs.rob.max() <= CoreConfig::table_i().rob_entries as u64);
        assert!(obs.rob.mean() > 0.0, "the window keeps the ROB non-empty");

        let trace = obs.trace().expect("tracing enabled");
        assert_eq!(trace.dropped(), 0, "capacity chosen to hold the whole run");
        let count = |pred: fn(&sdo_obs::Event) -> bool| {
            trace.events().iter().filter(|e| pred(e)).count() as u64
        };
        let stats = core.stats();
        assert_eq!(count(|e| e.kind == ObsEvent::Commit), stats.committed);
        assert_eq!(
            count(|e| matches!(e.kind, ObsEvent::OblProbe { .. })),
            stats.obl.issued
        );
        assert_eq!(
            count(|e| matches!(e.kind, ObsEvent::Validate { .. })),
            stats.obl.validations
        );
        assert_eq!(count(|e| e.kind == ObsEvent::Expose), stats.obl.exposures);
        assert_eq!(
            count(|e| matches!(e.kind, ObsEvent::Squash { .. })),
            stats.squashes.total(),
            "one squash event per counted squash"
        );
        // Events are emitted in nondecreasing cycle order.
        assert!(trace.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));

        // take_obs detaches the probe.
        let boxed = core.take_obs().expect("probe present");
        assert!(core.obs().is_none());
        assert_eq!(boxed.rob.count(), plain_core.now());
    }
}
