//! Per-core statistics, sufficient to regenerate every evaluation artifact
//! (Figures 6–8, Table III) of the paper.

use std::fmt;

use sdo_obs::MetricsSnapshot;

/// Squash counts by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquashCounts {
    /// Branch/jump mispredictions.
    pub branch: u64,
    /// Obl-Ld returned `fail` and had forwarded before turning safe
    /// (the paper's Figure 8 x-axis counts these).
    pub obl_fail: u64,
    /// Validation value mismatch (possible consistency violation).
    pub validation: u64,
    /// Invalidation-triggered consistency squash.
    pub consistency: u64,
    /// FP SDO predicted-normal but the operand was subnormal.
    pub fp_fail: u64,
}

impl SquashCounts {
    /// Total squashes of all causes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.branch + self.obl_fail + self.validation + self.consistency + self.fp_fail
    }

    /// SDO-attributable squashes (everything except branch mispredicts).
    #[must_use]
    pub fn sdo_related(&self) -> u64 {
        self.total() - self.branch
    }
}

/// Obl-Ld and location-predictor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OblStats {
    /// Obl-Ld operations issued.
    pub issued: u64,
    /// Issue attempts bounced by a full MSHR (retried).
    pub mshr_retries: u64,
    /// Obl-Lds that returned success.
    pub success: u64,
    /// Obl-Lds that returned fail.
    pub fail: u64,
    /// Tainted loads whose predictor said DRAM: reverted to delay.
    pub dram_predictions: u64,
    /// Obl-Lds satisfied by store-queue forwarding.
    pub sq_forwarded: u64,
    /// Resolved predictions (denominator for precision/accuracy).
    pub predictions: u64,
    /// Predictions with `predicted == actual` (Table III "Precision").
    pub precise: u64,
    /// Predictions with `predicted >= actual` (Table III "Accuracy").
    pub accurate: u64,
    /// Cycles wasted waiting for deeper-than-needed responses
    /// (imprecision cost, Figure 7).
    pub imprecision_cycles: u64,
    /// Cycles the ROB head stalled waiting for a validation (Figure 7).
    pub validation_stall_cycles: u64,
    /// Validation accesses issued.
    pub validations: u64,
    /// Exposure accesses issued.
    pub exposures: u64,
    /// Obl-Lds that failed because the L1 TLB probe missed.
    pub tlb_probe_fails: u64,
}

impl OblStats {
    /// Table III precision: fraction of resolved predictions with
    /// `predicted == actual`.
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.precise as f64 / self.predictions as f64
        }
    }

    /// Table III accuracy: fraction with `predicted >= actual`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.accurate as f64 / self.predictions as f64
        }
    }
}

/// Full per-core statistics block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed (retired) instructions.
    pub committed: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Instructions fetched (including wrong-path).
    pub fetched: u64,
    /// Instructions squashed.
    pub squashed_insts: u64,
    /// Squash causes.
    pub squashes: SquashCounts,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Mispredicted conditional branches/jump targets.
    pub mispredicts: u64,
    /// Loads delayed by STT (or DRAM prediction) awaiting untaint.
    pub delayed_loads: u64,
    /// Total cycles tainted loads spent delayed before issue.
    pub delay_cycles: u64,
    /// FP SDO operations issued on tainted operands.
    pub fp_sdo_issued: u64,
    /// FP transmit ops delayed by STT{ld+fp}.
    pub delayed_fp: u64,
    /// Obl-Ld statistics.
    pub obl: OblStats,
}

impl CoreStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Records a resolved location prediction (depths are
    /// [`sdo_mem::CacheLevel::depth`] values).
    pub fn record_prediction(&mut self, predicted_depth: u8, actual_depth: u8) {
        self.obl.predictions += 1;
        if predicted_depth == actual_depth {
            self.obl.precise += 1;
        }
        if predicted_depth >= actual_depth {
            self.obl.accurate += 1;
        }
    }

    /// Registers every counter under `prefix` in `m` (hierarchical
    /// paths, e.g. `core.squash.obl_fail`). Destructures `self` (and
    /// its nested [`SquashCounts`]/[`OblStats`]) so adding a field
    /// without exporting it is a compile error — the registry cannot
    /// drift from the struct.
    pub fn export_metrics(&self, m: &mut MetricsSnapshot, prefix: &str) {
        let CoreStats {
            cycles,
            committed,
            committed_loads,
            committed_stores,
            fetched,
            squashed_insts,
            squashes,
            branches,
            mispredicts,
            delayed_loads,
            delay_cycles,
            fp_sdo_issued,
            delayed_fp,
            obl,
        } = *self;
        let SquashCounts { branch, obl_fail, validation, consistency, fp_fail } = squashes;
        let OblStats {
            issued,
            mshr_retries,
            success,
            fail,
            dram_predictions,
            sq_forwarded,
            predictions,
            precise,
            accurate,
            imprecision_cycles,
            validation_stall_cycles,
            validations,
            exposures,
            tlb_probe_fails,
        } = obl;
        let add = |m: &mut MetricsSnapshot, name: &str, v: u64| {
            m.add(&format!("{prefix}.{name}"), v);
        };
        add(m, "cycles", cycles);
        add(m, "committed", committed);
        add(m, "committed_loads", committed_loads);
        add(m, "committed_stores", committed_stores);
        add(m, "fetched", fetched);
        add(m, "squashed_insts", squashed_insts);
        add(m, "squash.branch", branch);
        add(m, "squash.obl_fail", obl_fail);
        add(m, "squash.validation", validation);
        add(m, "squash.consistency", consistency);
        add(m, "squash.fp_fail", fp_fail);
        add(m, "branches", branches);
        add(m, "mispredicts", mispredicts);
        add(m, "delayed_loads", delayed_loads);
        add(m, "delay_cycles", delay_cycles);
        add(m, "fp_sdo_issued", fp_sdo_issued);
        add(m, "delayed_fp", delayed_fp);
        add(m, "obl.issued", issued);
        add(m, "obl.mshr_retries", mshr_retries);
        add(m, "obl.success", success);
        add(m, "obl.fail", fail);
        add(m, "obl.dram_predictions", dram_predictions);
        add(m, "obl.sq_forwarded", sq_forwarded);
        add(m, "obl.predictions", predictions);
        add(m, "obl.precise", precise);
        add(m, "obl.accurate", accurate);
        add(m, "obl.imprecision_cycles", imprecision_cycles);
        add(m, "obl.validation_stall_cycles", validation_stall_cycles);
        add(m, "obl.validations", validations);
        add(m, "obl.exposures", exposures);
        add(m, "obl.tlb_probe_fails", tlb_probe_fails);
    }
}

impl fmt::Display for CoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles {} | committed {} (IPC {:.2}) | loads {} stores {}",
            self.cycles,
            self.committed,
            self.ipc(),
            self.committed_loads,
            self.committed_stores
        )?;
        writeln!(
            f,
            "squashes: branch {} oblFail {} validation {} consistency {} fp {}",
            self.squashes.branch,
            self.squashes.obl_fail,
            self.squashes.validation,
            self.squashes.consistency,
            self.squashes.fp_fail
        )?;
        write!(
            f,
            "obl: {} issued ({} ok / {} fail), precision {:.1}% accuracy {:.1}%, {} delayed loads",
            self.obl.issued,
            self.obl.success,
            self.obl.fail,
            100.0 * self.obl.precision(),
            100.0 * self.obl.accuracy(),
            self.delayed_loads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_zero_cycles() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn prediction_accounting() {
        let mut s = CoreStats::default();
        s.record_prediction(2, 2); // precise + accurate
        s.record_prediction(3, 1); // accurate only
        s.record_prediction(1, 3); // neither
        assert_eq!(s.obl.predictions, 3);
        assert_eq!(s.obl.precise, 1);
        assert_eq!(s.obl.accurate, 2);
        assert!((s.obl.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.obl.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn squash_totals() {
        let s = SquashCounts { branch: 5, obl_fail: 3, validation: 1, consistency: 2, fp_fail: 4 };
        assert_eq!(s.total(), 15);
        assert_eq!(s.sdo_related(), 10);
    }

    #[test]
    fn display_nonempty() {
        assert!(!CoreStats::default().to_string().is_empty());
    }

    #[test]
    fn rates_with_no_predictions() {
        let o = OblStats::default();
        assert_eq!(o.precision(), 0.0);
        assert_eq!(o.accuracy(), 0.0);
    }

    #[test]
    fn export_covers_every_field() {
        let s = CoreStats {
            committed: 9,
            squashes: SquashCounts { obl_fail: 2, ..Default::default() },
            ..Default::default()
        };
        let mut m = MetricsSnapshot::new();
        s.export_metrics(&mut m, "core");
        // 12 scalar fields + 5 squash causes + 14 obl fields.
        assert_eq!(m.len(), 31);
        assert_eq!(m.counter("core.committed"), Some(9));
        assert_eq!(m.counter("core.squash.obl_fail"), Some(2));
        s.export_metrics(&mut m, "core");
        assert_eq!(m.counter("core.committed"), Some(18));
    }
}
