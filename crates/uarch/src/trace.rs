//! Pipeline tracing: per-instruction lifecycle timestamps.
//!
//! Enable with [`Core::enable_trace`](crate::Core::enable_trace) to record
//! when each dynamic instruction was dispatched, issued, completed and
//! committed (or squashed). Useful for debugging protection behaviour —
//! an STT-delayed load shows up as a large dispatch→issue gap, an Obl-Ld
//! squash as a `squashed` stamp on its dependents.

use sdo_isa::Instruction;
use sdo_mem::Cycle;
use std::collections::BTreeMap;
use std::fmt;

/// Lifecycle of one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// The instruction.
    pub inst: Instruction,
    /// Cycle the instruction entered the ROB.
    pub dispatched: Cycle,
    /// Cycle it left the issue queue for a functional unit / memory.
    pub issued: Option<Cycle>,
    /// Cycle its result was produced (writeback / load done / resolved).
    pub completed: Option<Cycle>,
    /// Cycle it retired.
    pub committed: Option<Cycle>,
    /// Cycle it was squashed, if it never retired.
    pub squashed: Option<Cycle>,
}

/// A bounded recording of instruction lifecycles.
///
/// Recording stops silently once `capacity` instructions have been
/// dispatched (old entries are kept — the interesting window is usually
/// the beginning of a run or around a bug reproduced early).
#[derive(Debug, Clone)]
pub struct PipelineTrace {
    entries: BTreeMap<u64, TraceEntry>,
    capacity: usize,
}

impl PipelineTrace {
    /// Creates a trace that records up to `capacity` instructions.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        PipelineTrace { entries: BTreeMap::new(), capacity }
    }

    pub(crate) fn dispatch(&mut self, seq: u64, pc: u64, inst: Instruction, now: Cycle) {
        if self.entries.len() >= self.capacity {
            return;
        }
        self.entries.insert(
            seq,
            TraceEntry {
                seq,
                pc,
                inst,
                dispatched: now,
                issued: None,
                completed: None,
                committed: None,
                squashed: None,
            },
        );
    }

    pub(crate) fn issue(&mut self, seq: u64, now: Cycle) {
        if let Some(e) = self.entries.get_mut(&seq) {
            // Re-issues (after an Obl-Ld fail) keep the first issue stamp.
            e.issued.get_or_insert(now);
        }
    }

    pub(crate) fn complete(&mut self, seq: u64, now: Cycle) {
        if let Some(e) = self.entries.get_mut(&seq) {
            e.completed = Some(now);
        }
    }

    pub(crate) fn commit(&mut self, seq: u64, now: Cycle) {
        if let Some(e) = self.entries.get_mut(&seq) {
            e.committed = Some(now);
        }
    }

    pub(crate) fn squash(&mut self, seq: u64, now: Cycle) {
        if let Some(e) = self.entries.get_mut(&seq) {
            e.squashed = Some(now);
        }
    }

    /// All recorded entries in sequence order.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.values()
    }

    /// Number of recorded instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for PipelineTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}  inst",
            "seq", "pc", "dispatch", "issue", "complete", "commit", "squash"
        )?;
        let opt = |c: Option<Cycle>| c.map_or("-".to_string(), |v| v.to_string());
        for e in self.entries.values() {
            writeln!(
                f,
                "{:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}  {}",
                e.seq,
                e.pc,
                e.dispatched,
                opt(e.issued),
                opt(e.completed),
                opt(e.committed),
                opt(e.squashed),
                e.inst
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_isa::Instruction;

    #[test]
    fn records_lifecycle_in_order() {
        let mut t = PipelineTrace::new(4);
        t.dispatch(0, 0, Instruction::Nop, 1);
        t.issue(0, 2);
        t.complete(0, 5);
        t.commit(0, 6);
        let e = *t.entries().next().unwrap();
        assert_eq!(e.dispatched, 1);
        assert_eq!(e.issued, Some(2));
        assert_eq!(e.completed, Some(5));
        assert_eq!(e.committed, Some(6));
        assert_eq!(e.squashed, None);
    }

    #[test]
    fn first_issue_stamp_is_kept_on_reissue() {
        let mut t = PipelineTrace::new(4);
        t.dispatch(3, 9, Instruction::Nop, 1);
        t.issue(3, 2);
        t.issue(3, 40);
        assert_eq!(t.entries().next().unwrap().issued, Some(2));
    }

    #[test]
    fn capacity_bounds_recording() {
        let mut t = PipelineTrace::new(2);
        for seq in 0..5 {
            t.dispatch(seq, seq, Instruction::Nop, seq);
        }
        assert_eq!(t.len(), 2);
        // Updates to unrecorded seqs are silently dropped.
        t.commit(4, 10);
    }

    #[test]
    fn display_renders_rows() {
        let mut t = PipelineTrace::new(4);
        t.dispatch(0, 0, Instruction::Halt, 1);
        t.squash(0, 7);
        let s = t.to_string();
        assert!(s.contains("halt"));
        assert!(s.contains('7'));
        assert!(!t.is_empty());
    }
}
