//! # sdo-uarch — speculative out-of-order core with STT and SDO
//!
//! A cycle-level out-of-order pipeline (Table I of the SDO paper) that can
//! run in any of the protection configurations of Table II:
//!
//! * [`Protection::Unsafe`] — the insecure baseline (and the target of
//!   the Spectre V1 penetration test),
//! * [`Protection::Stt`] — Speculative Taint Tracking with delayed
//!   execution of tainted transmitters (`STT{ld}` / `STT{ld+fp}`),
//! * [`Protection::Sdo`] — STT + Speculative Data-Oblivious execution:
//!   Obl-Ld operations driven by a location predictor, plus the
//!   predict-normal FP DO variant.
//!
//! See [`Core`] for the pipeline and the crate-level modules for the
//! individual structures (rename/[`regfile`], [`branch`] prediction,
//! [`stats`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
pub mod config;
mod core;
pub mod regfile;
mod rob;
mod sched;
pub mod stats;
pub mod trace;

pub use crate::core::{Core, RunError, ITEXT_BASE};
pub use config::{
    AttackModel, CoreConfig, FuPool, Latencies, PredictorKind, Protection, SdoConfig,
    SecurityConfig,
};
pub use stats::{CoreStats, OblStats, SquashCounts};
pub use trace::{PipelineTrace, TraceEntry};
// Re-exported so downstream code can configure and consume the
// observability probe without naming sdo-obs directly.
pub use sdo_obs::{
    Divergence, Event as ObsEvent, EventKind as ObsEventKind, EventTrace, Histogram, MemOp, Metric,
    MetricsSnapshot, ObsConfig, ObservableTrace, PipelineObs, QueueCaps, SquashCause,
};
