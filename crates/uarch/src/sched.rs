//! Calendar-wheel event scheduler for the core's writeback events.
//!
//! The core schedules every completion (functional-unit writeback, load
//! data return, Obl-Ld per-level responses, validation results) at an
//! absolute cycle. A binary heap makes each push/pop `O(log n)`; this
//! wheel makes the common path `O(1)`:
//!
//! * events due within the wheel horizon `W` land in `bucket[at % W]`
//!   and are popped by draining the current cycle's bucket;
//! * rarer far-future events (`at - now >= W`) go to a small overflow
//!   heap, consulted by its min only;
//! * a per-bucket occupancy bitmap supports `next_at` — the earliest
//!   pending cycle — in a handful of word scans, which is what the
//!   quiescence fast-forward horizon (DESIGN.md §11) needs.
//!
//! ## Delivery-order equivalence with the heap
//!
//! The heap delivered events ordered by `(at, order)` with `order`
//! globally monotone. The wheel preserves that order exactly:
//!
//! * Every event is scheduled strictly in the future (`at > now` at push
//!   time) and no cycle with a pending bucket event is ever skipped (the
//!   fast-forward horizon is clamped below `next_at`), so at delivery
//!   time every due event has `at == now` exactly.
//! * A bucket holds events for a single cycle (pushes land in a bucket
//!   only when `at - now < W`, so one rotation's worth), and pushes into
//!   it happen in increasing `order` — FIFO drain is `(at, order)` order.
//! * An overflow event due at cycle `c` was pushed at some cycle
//!   `<= c - W`, while every bucket event for `c` was pushed at a cycle
//!   `> c - W`; `order` is monotone in push time, so *all* overflow
//!   events for a cycle precede *all* bucket events for it. Draining the
//!   overflow heap first, then the bucket, is therefore exact.

use sdo_mem::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wheel horizon in cycles. Must be a power of two. 1024 comfortably
/// covers every fixed latency in the model (DRAM row miss ~120 cycles
/// plus queuing); anything beyond it is MSHR/bank-contention tail and
/// takes the overflow path.
const WHEEL_HORIZON: usize = 1024;

/// One scheduled completion, addressed by the target instruction's ROB
/// `(slot, seq)` handle so delivery needs no sequence-number search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Event<K> {
    pub at: Cycle,
    pub order: u64,
    pub slot: u32,
    pub seq: u64,
    pub kind: K,
}

impl<K: Eq> Ord for Event<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.order).cmp(&(other.at, other.order))
    }
}

impl<K: Eq> PartialOrd for Event<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The wheel itself. `len` counts all pending events (buckets +
/// overflow) for diagnostics.
#[derive(Debug)]
pub(crate) struct EventWheel<K> {
    buckets: Vec<Vec<Event<K>>>,
    /// Bit `i` set iff `buckets[i]` is non-empty.
    occupied: [u64; WHEEL_HORIZON / 64],
    overflow: BinaryHeap<Reverse<Event<K>>>,
    len: usize,
}

impl<K: Copy + Eq> EventWheel<K> {
    pub fn new() -> Self {
        EventWheel {
            buckets: std::iter::repeat_with(Vec::new).take(WHEEL_HORIZON).collect(),
            occupied: [0; WHEEL_HORIZON / 64],
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Schedules `ev`; `ev.at` must be strictly after `now`.
    pub fn push(&mut self, now: Cycle, ev: Event<K>) {
        debug_assert!(ev.at > now, "events are always scheduled in the future");
        self.len += 1;
        if (ev.at - now) < WHEEL_HORIZON as u64 {
            let idx = (ev.at as usize) & (WHEEL_HORIZON - 1);
            self.buckets[idx].push(ev);
            self.occupied[idx / 64] |= 1u64 << (idx % 64);
        } else {
            self.overflow.push(Reverse(ev));
        }
    }

    /// Appends every event due at `now` to `out`, in exact `(at, order)`
    /// delivery order (see the module docs for why overflow-then-bucket
    /// preserves it).
    pub fn drain_due(&mut self, now: Cycle, out: &mut Vec<Event<K>>) {
        while let Some(Reverse(ev)) = self.overflow.peek() {
            if ev.at > now {
                break;
            }
            let Some(Reverse(ev)) = self.overflow.pop() else { unreachable!("peeked") };
            debug_assert!(ev.at == now, "overflow event missed its cycle");
            self.len -= 1;
            out.push(ev);
        }
        let idx = (now as usize) & (WHEEL_HORIZON - 1);
        if self.occupied[idx / 64] & (1u64 << (idx % 64)) != 0 {
            debug_assert!(self.buckets[idx].iter().all(|e| e.at == now));
            self.len -= self.buckets[idx].len();
            out.append(&mut self.buckets[idx]);
            self.occupied[idx / 64] &= !(1u64 << (idx % 64));
        }
    }

    /// The earliest cycle strictly after `now` with a pending event, if
    /// any — the scheduler's contribution to the fast-forward horizon.
    /// (No event is ever *due* by `now` when this is consulted; the core
    /// drains first.)
    pub fn next_at(&self, now: Cycle) -> Option<Cycle> {
        let mut best: Option<Cycle> = self.overflow.peek().map(|Reverse(e)| e.at);
        // Scan the occupancy bitmap for the first set bucket in wheel
        // order starting just after `now`'s own bucket.
        let start = ((now + 1) as usize) & (WHEEL_HORIZON - 1);
        let mut remaining = WHEEL_HORIZON - 1; // exclude now's own bucket
        let mut pos = start;
        while remaining > 0 {
            let word = pos / 64;
            let bit = pos % 64;
            let span = (64 - bit).min(remaining);
            let mask = if span == 64 { !0u64 } else { ((1u64 << span) - 1) << bit };
            let hit = self.occupied[word] & mask;
            if hit != 0 {
                let first = hit.trailing_zeros() as usize; // bit index in word
                let offset = (word * 64 + first + WHEEL_HORIZON - start) % WHEEL_HORIZON;
                let at = now + 1 + offset as u64;
                best = Some(best.map_or(at, |b| b.min(at)));
                break;
            }
            pos = (pos + span) % WHEEL_HORIZON;
            remaining -= span;
        }
        best
    }

    /// The earliest pending event (for diagnostics only; `O(W/64)`).
    pub fn peek_earliest(&self, now: Cycle) -> Option<&Event<K>> {
        let bucket_at = {
            // Include now's own bucket: diagnostics may run mid-cycle.
            let idx = (now as usize) & (WHEEL_HORIZON - 1);
            if self.occupied[idx / 64] & (1u64 << (idx % 64)) != 0 {
                Some(now)
            } else {
                self.next_at(now).filter(|&at| {
                    let i = (at as usize) & (WHEEL_HORIZON - 1);
                    self.occupied[i / 64] & (1u64 << (i % 64)) != 0
                })
            }
        };
        let bucket_ev = bucket_at
            .and_then(|at| self.buckets[(at as usize) & (WHEEL_HORIZON - 1)].first());
        match (bucket_ev, self.overflow.peek().map(|Reverse(e)| e)) {
            (Some(b), Some(o)) => Some(if (b.at, b.order) <= (o.at, o.order) { b } else { o }),
            (Some(b), None) => Some(b),
            (None, o) => o,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Cycle, order: u64) -> Event<u8> {
        Event { at, order, slot: 0, seq: order, kind: 0 }
    }

    #[test]
    fn drains_in_at_then_order() {
        let mut w = EventWheel::new();
        w.push(0, ev(5, 3));
        w.push(0, ev(2, 1));
        w.push(0, ev(2, 2));
        let mut out = Vec::new();
        w.drain_due(1, &mut out);
        assert!(out.is_empty());
        w.drain_due(2, &mut out);
        assert_eq!(out.iter().map(|e| e.order).collect::<Vec<_>>(), vec![1, 2]);
        out.clear();
        w.drain_due(5, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn overflow_events_precede_bucket_events_for_same_cycle() {
        let mut w = EventWheel::new();
        // Pushed early with a huge latency: overflow path, low order.
        w.push(0, ev(5000, 1));
        // Pushed later for the same cycle: bucket path, higher order.
        w.push(4990, ev(5000, 2));
        let mut out = Vec::new();
        w.drain_due(5000, &mut out);
        assert_eq!(out.iter().map(|e| e.order).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn next_at_sees_buckets_and_overflow() {
        let mut w = EventWheel::new();
        assert_eq!(w.next_at(10), None);
        w.push(10, ev(900, 1));
        assert_eq!(w.next_at(10), Some(900));
        w.push(10, ev(40, 2));
        assert_eq!(w.next_at(10), Some(40));
        w.push(10, ev(10_000, 3));
        assert_eq!(w.next_at(10), Some(40));
        let mut out = Vec::new();
        w.drain_due(40, &mut out);
        w.drain_due(900, &mut out);
        assert_eq!(w.next_at(900), Some(10_000));
    }

    #[test]
    fn next_at_handles_wraparound() {
        let mut w = EventWheel::new();
        // now near a wheel boundary; target wraps around modulo 1024.
        w.push(1020, ev(1030, 1));
        assert_eq!(w.next_at(1020), Some(1030));
        let mut out = Vec::new();
        w.drain_due(1030, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(w.next_at(1030), None);
    }

    #[test]
    fn horizon_boundary_goes_to_overflow() {
        let mut w = EventWheel::new();
        // at - now == WHEEL_HORIZON would collide with now's own bucket;
        // it must take the overflow path and still deliver on time.
        w.push(7, ev(7 + WHEEL_HORIZON as u64, 1));
        assert_eq!(w.next_at(7), Some(7 + WHEEL_HORIZON as u64));
        let mut out = Vec::new();
        w.drain_due(7 + WHEEL_HORIZON as u64, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn peek_earliest_matches_min() {
        let mut w = EventWheel::new();
        w.push(0, ev(9, 2));
        w.push(0, ev(3, 1));
        w.push(0, ev(5000, 3));
        assert_eq!(w.peek_earliest(0).map(|e| e.at), Some(3));
    }
}
