//! Structure-of-arrays reorder buffer slab.
//!
//! The ROB is a fixed-capacity circular window over pre-allocated slots.
//! The fields every per-cycle sweep touches — sequence numbers and the
//! boolean pipeline state — live in parallel arrays ([`RobSlab::seq`]
//! plus [`BitSet`] bitwords owned by the core), while the cold per-entry
//! payload stays in one `body` array indexed by the same slot. Stages
//! address entries by a generational `(slot, seq)` handle: sequence
//! numbers are never reused, so comparing the slab's current `seq[slot]`
//! against a handle's seq detects squashed entries in O(1), replacing
//! the old seq-keyed binary searches.
//!
//! ## Safe-prefix visibility frontier
//!
//! STT visibility ("safe"/untainted state) is always a prefix of the
//! window: entries become safe oldest-first up to the first blocker, and
//! once safe never revert while live. The slab therefore stores it as a
//! single `safe_len` counter plus the cached sequence number of the
//! first unsafe entry — making every taint check (`seq >=
//! first_unsafe_seq`) a compare instead of a ROB lookup. Invariants:
//!
//! * `safe_len <= len`; positions `0..safe_len` are safe.
//! * `first_unsafe_seq` is `seq` at position `safe_len`, or `u64::MAX`
//!   when the whole window is safe (or empty).
//! * `advance_safe` only grows the prefix (per-entry safety is monotone
//!   while live); commits shrink it from the front in lockstep with the
//!   window, squashes clamp it from the back.

/// A fixed-capacity bitword set indexed by ROB slot. One bit per slot,
/// packed 64 per word, so whole-window predicates (sweep candidate
/// masks, visibility blockers) cost a few word operations.
#[derive(Debug, Clone)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub fn new(cap: usize) -> Self {
        BitSet { words: vec![0; cap.div_ceil(64).max(1)] }
    }

    #[inline]
    pub fn get(&self, i: u32) -> bool {
        self.words[i as usize / 64] & (1u64 << (i % 64)) != 0
    }

    #[inline]
    pub fn set(&mut self, i: u32) {
        self.words[i as usize / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    pub fn clear(&mut self, i: u32) {
        self.words[i as usize / 64] &= !(1u64 << (i % 64));
    }

    /// Whether any bit is set. Bits are only ever set on live slots (the
    /// core clears a slot's bits when the entry leaves the window), so
    /// this is a valid O(words) stage-skip gate.
    #[inline]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    #[inline]
    fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Clears every bit in the slot range `[a, b)` with word-masked
    /// stores — the squash path's bulk alternative to per-slot clears.
    pub fn clear_range(&mut self, a: u32, b: u32) {
        if a >= b {
            return;
        }
        let (a, b) = (a as usize, b as usize);
        let mut w = a / 64;
        let last = (b - 1) / 64;
        while w <= last {
            let lo = (w * 64).max(a) - w * 64;
            let hi = ((w + 1) * 64).min(b) - w * 64;
            let mask = if hi - lo == 64 { !0u64 } else { ((1u64 << (hi - lo)) - 1) << lo };
            self.words[w] &= !mask;
            w += 1;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// "Not a slot" sentinel for [`SlotList`] links.
const NIL: u32 = u32::MAX;

/// An intrusive doubly-linked list over ROB slots (the issue queue).
/// Each slot appears at most once; membership, tail insertion and
/// removal by slot are all O(1), so the issue stage never walks waiting
/// entries it cannot issue. List order is insertion order, which for
/// the IQ is dispatch (age) order. `next[slot] == slot` is the
/// "absent" sentinel — a queued node's `next` is another slot or
/// [`NIL`], never itself.
#[derive(Debug)]
pub(crate) struct SlotList {
    next: Vec<u32>,
    prev: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl SlotList {
    pub fn new(cap: usize) -> Self {
        SlotList {
            next: (0..cap as u32).collect(),
            prev: vec![NIL; cap],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn contains(&self, slot: u32) -> bool {
        self.next[slot as usize] != slot
    }

    pub fn push_back(&mut self, slot: u32) {
        debug_assert!(!self.contains(slot), "slot already queued");
        self.prev[slot as usize] = self.tail;
        self.next[slot as usize] = NIL;
        if self.tail == NIL {
            self.head = slot;
        } else {
            self.next[self.tail as usize] = slot;
        }
        self.tail = slot;
        self.len += 1;
    }

    pub fn remove(&mut self, slot: u32) {
        debug_assert!(self.contains(slot), "slot not queued");
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.next[slot as usize] = slot;
        self.prev[slot as usize] = NIL;
        self.len -= 1;
    }
}

/// The circular slab. `B` is the cold per-entry body (the core's
/// `InstSlot`); hot flags live outside in [`BitSet`]s sharing the slot
/// index space.
#[derive(Debug)]
pub(crate) struct RobSlab<B> {
    cap: usize,
    head: usize,
    len: usize,
    seq: Vec<u64>,
    body: Vec<B>,
    safe_len: usize,
    first_unsafe_seq: u64,
}

impl<B> RobSlab<B> {
    /// Pre-allocates `cap` slots, filling each with an inert placeholder
    /// from `fill` (slots are fully overwritten on dispatch).
    pub fn new(cap: usize, fill: impl FnMut() -> B) -> Self {
        assert!(cap > 0, "ROB capacity must be positive");
        RobSlab {
            cap,
            head: 0,
            len: 0,
            seq: vec![0; cap],
            body: std::iter::repeat_with(fill).take(cap).collect(),
            safe_len: 0,
            first_unsafe_seq: u64::MAX,
        }
    }

    /// The youngest entry's slot, if any.
    #[inline]
    pub fn back_slot(&self) -> Option<u32> {
        (self.len > 0).then(|| self.slot_at(self.len - 1))
    }
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Slot holding the window position `pos` (0 = oldest).
    #[inline]
    pub fn slot_at(&self, pos: usize) -> u32 {
        debug_assert!(pos < self.len);
        ((self.head + pos) % self.cap) as u32
    }

    /// The oldest entry's slot, if any.
    #[inline]
    pub fn head_slot(&self) -> Option<u32> {
        (self.len > 0).then_some(self.head as u32)
    }

    /// Whether `slot` currently holds a live window entry.
    #[inline]
    pub fn in_window(&self, slot: u32) -> bool {
        (slot as usize + self.cap - self.head) % self.cap < self.len
    }

    /// Whether the `(slot, seq)` handle still names a live entry.
    #[inline]
    pub fn is_live(&self, slot: u32, seq: u64) -> bool {
        self.seq[slot as usize] == seq && self.in_window(slot)
    }

    /// Sequence number currently stored at `slot` (meaningful only for
    /// live slots; dead slots retain their last occupant's seq, which is
    /// exactly what makes handle checks work).
    #[inline]
    pub fn seq_of(&self, slot: u32) -> u64 {
        self.seq[slot as usize]
    }

    #[inline]
    pub fn body(&self, slot: u32) -> &B {
        &self.body[slot as usize]
    }

    #[inline]
    pub fn body_mut(&mut self, slot: u32) -> &mut B {
        &mut self.body[slot as usize]
    }

    /// Sequence number of the first (oldest) unsafe entry, or
    /// `u64::MAX` when everything live is safe. A YRoT `seq` denotes
    /// active taint iff `seq >= first_unsafe_seq`.
    #[inline]
    pub fn first_unsafe_seq(&self) -> u64 {
        self.first_unsafe_seq
    }

    /// Appends a new youngest entry; returns its slot. The new entry is
    /// unsafe (visibility advances only in `advance_safe`).
    pub fn push_back(&mut self, seq: u64, b: B) -> u32 {
        assert!(self.len < self.cap, "ROB slab overflow");
        let slot = ((self.head + self.len) % self.cap) as u32;
        self.seq[slot as usize] = seq;
        self.body[slot as usize] = b;
        self.len += 1;
        if self.safe_len == self.len - 1 {
            // The new entry sits exactly at the frontier.
            self.first_unsafe_seq = seq;
        }
        slot
    }

    /// Removes the oldest entry, returning its (now dead) slot. The
    /// caller copies out whatever it needs first. Commit does not
    /// consult visibility, so the head may retire while still unsafe
    /// (e.g. in the same cycle its blocking resolution applied, before
    /// the next visibility pass): safety is a prefix, so an unsafe head
    /// means `safe_len == 0` and the frontier moves to the new head.
    /// Either way a retired seq compares below `first_unsafe_seq`
    /// afterwards — retirement untaints.
    pub fn pop_front(&mut self) -> u32 {
        debug_assert!(self.len > 0);
        let slot = self.head as u32;
        self.head = (self.head + 1) % self.cap;
        self.len -= 1;
        if self.safe_len > 0 {
            self.safe_len -= 1;
        } else {
            self.first_unsafe_seq =
                if self.len > 0 { self.seq[self.head] } else { u64::MAX };
        }
        slot
    }

    /// Removes the youngest entry (squash path), returning its dead
    /// slot. Clamps the safe prefix if it extended past the new end.
    pub fn pop_back(&mut self) -> u32 {
        debug_assert!(self.len > 0);
        self.len -= 1;
        let slot = ((self.head + self.len) % self.cap) as u32;
        if self.safe_len >= self.len {
            // The first unsafe entry (and everything after) is gone:
            // every remaining live entry is safe.
            self.safe_len = self.len;
            self.first_unsafe_seq = u64::MAX;
        }
        slot
    }

    /// Advances the visibility frontier given the combined blocker masks
    /// (OR of the provided bitsets). The frontier grows to include
    /// everything up to and including the first blocker — and never
    /// shrinks: a blocker arising *inside* the already-safe prefix (a
    /// pending consistency squash on a retired-visibility load) must not
    /// revoke safety already granted. Returns whether any entry newly
    /// became safe.
    pub fn advance_safe(&mut self, blockers: &[&BitSet]) -> bool {
        let reach = match self.first_blocker_pos(blockers) {
            Some(pos) => (pos + 1).min(self.len),
            None => self.len,
        };
        let progressed = reach > self.safe_len;
        if progressed {
            self.safe_len = reach;
            self.first_unsafe_seq = if self.safe_len < self.len {
                self.seq[self.slot_at(self.safe_len) as usize]
            } else {
                u64::MAX
            };
        }
        progressed
    }

    /// Window position of the first entry with a bit set in any of
    /// `masks`, oldest-first.
    fn first_blocker_pos(&self, masks: &[&BitSet]) -> Option<usize> {
        let mut found: Option<u32> = None;
        self.scan_spans(|word, span_mask| {
            let mut hit = 0u64;
            for m in masks {
                hit |= m.word(word);
            }
            hit &= span_mask;
            if hit != 0 {
                found = Some((word * 64) as u32 + hit.trailing_zeros());
                true
            } else {
                false
            }
        });
        found.map(|slot| (slot as usize + self.cap - self.head) % self.cap)
    }

    /// Snapshots every live `(slot, seq)` whose bit is set in `mask`,
    /// oldest-first, into `out` (cleared first). This is the resolve
    /// stage's candidate capture: the caller then re-checks each handle
    /// for liveness as squashes land mid-sweep.
    pub fn collect_mask(&self, mask: &BitSet, out: &mut Vec<(u32, u64)>) {
        out.clear();
        self.scan_spans(|word, span_mask| {
            let mut hit = mask.word(word) & span_mask;
            while hit != 0 {
                let slot = (word * 64) as u32 + hit.trailing_zeros();
                out.push((slot, self.seq[slot as usize]));
                hit &= hit - 1;
            }
            false
        });
    }

    /// Drives `f` over the (up to two) contiguous slot spans of the
    /// circular window, word by word, passing the word index and a mask
    /// selecting the in-window bits of that word. `f` returns `true` to
    /// stop early. Within a span, words run oldest-first; span one
    /// (head..) precedes span two (the wrap), so visiting order is
    /// window order — except that a *word-aligned* wrap could interleave
    /// ages across spans' shared words; spans never share a word because
    /// they cover disjoint slot ranges.
    fn scan_spans(&self, mut f: impl FnMut(usize, u64) -> bool) {
        let end = self.head + self.len;
        let spans = [(self.head, end.min(self.cap)), (0, end.saturating_sub(self.cap))];
        for (a, b) in spans {
            if a >= b {
                continue;
            }
            let mut w = a / 64;
            let last = (b - 1) / 64;
            while w <= last {
                let lo = (w * 64).max(a) - w * 64;
                let hi = ((w + 1) * 64).min(b) - w * 64;
                let mask = if hi - lo == 64 { !0u64 } else { ((1u64 << (hi - lo)) - 1) << lo };
                if f(w, mask) {
                    return;
                }
                w += 1;
            }
        }
    }

    /// The (up to two) contiguous slot ranges `[start, end)` occupied by
    /// window positions `from..to`. Positions past `len` are legal — the
    /// squash path asks about the just-popped suffix.
    pub fn slot_ranges(&self, from: usize, to: usize) -> [(u32, u32); 2] {
        if from >= to {
            return [(0, 0), (0, 0)];
        }
        let a = self.head + from;
        let b = self.head + to;
        let first = (a % self.cap, if b <= self.cap { b } else { self.cap });
        let second = if b > self.cap { (0, b - self.cap) } else { (0, 0) };
        // A wrapped `a` means the whole range lives in the low span.
        if a >= self.cap {
            return [((a - self.cap) as u32, (b - self.cap) as u32), (0, 0)];
        }
        [(first.0 as u32, first.1 as u32), (second.0 as u32, second.1 as u32)]
    }

    /// Iterates the live slots oldest-first (diagnostics / cold paths).
    pub fn slots(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).map(|pos| self.slot_at(pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab(cap: usize) -> RobSlab<u32> {
        RobSlab::new(cap, || 0)
    }

    #[test]
    fn clear_range_and_count_are_word_mask_exact() {
        let mut b = BitSet::new(200);
        for i in [0u32, 63, 64, 127, 128, 199] {
            b.set(i);
        }
        assert_eq!(b.count(), 6);
        b.clear_range(63, 128); // kills 63, 64, 127
        assert_eq!(b.count(), 3);
        assert!(b.get(0) && b.get(128) && b.get(199));
        assert!(!b.get(63) && !b.get(64) && !b.get(127));
        b.clear_range(5, 5); // empty range is a no-op
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn slot_ranges_covers_wrap_geometries() {
        let mut s = slab(8);
        for i in 0..8 {
            s.push_back(i, 0);
        }
        s.advance_safe(&[]);
        for _ in 0..6 {
            s.pop_front();
        }
        s.push_back(8, 0);
        s.push_back(9, 0);
        s.push_back(10, 0); // head at 6, len 5: slots 6,7,0,1,2
        assert_eq!(s.slot_ranges(0, 5), [(6, 8), (0, 3)]);
        assert_eq!(s.slot_ranges(0, 2), [(6, 8), (0, 0)]);
        assert_eq!(s.slot_ranges(2, 5), [(0, 3), (0, 0)]);
        assert_eq!(s.slot_ranges(3, 3), [(0, 0), (0, 0)]);
    }

    #[test]
    fn slot_list_push_remove_preserves_order_and_membership() {
        let mut l = SlotList::new(8);
        for s in [3u32, 5, 1, 7] {
            l.push_back(s);
        }
        assert_eq!(l.len(), 4);
        assert!(l.contains(5) && !l.contains(0));
        l.remove(5); // middle
        l.remove(3); // head
        l.remove(7); // tail
        assert_eq!(l.len(), 1);
        assert!(l.contains(1) && !l.contains(5));
        l.remove(1);
        assert_eq!(l.len(), 0);
        // Reuse after full drain.
        l.push_back(5);
        assert!(l.contains(5));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn push_pop_wraps_and_tracks_handles() {
        let mut s = slab(4);
        let a = s.push_back(10, 1);
        let b = s.push_back(11, 2);
        assert!(s.is_live(a, 10) && s.is_live(b, 11));
        s.advance_safe(&[]);
        assert_eq!(s.pop_front(), a);
        assert!(!s.is_live(a, 10), "popped handle dies");
        // Wrap around the 4-entry ring several times.
        for i in 0..10u64 {
            let sl = s.push_back(12 + i, 0);
            assert!(s.is_live(sl, 12 + i));
            s.advance_safe(&[]); // everything safe so pops are legal
            let h = s.head_slot().unwrap();
            let hseq = s.seq_of(h);
            assert_eq!(s.pop_front(), h);
            assert!(!s.is_live(h, hseq));
        }
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slot_reuse_invalidates_old_handles() {
        let mut s = slab(2);
        let a = s.push_back(1, 0);
        s.advance_safe(&[]);
        s.pop_front();
        let b = s.push_back(2, 0);
        // Depending on geometry the slot may be reused; either way the
        // old handle must be dead and the new one live.
        assert!(!s.is_live(a, 1));
        assert!(s.is_live(b, 2));
    }

    #[test]
    fn safe_prefix_advances_to_first_blocker_inclusive() {
        let mut s = slab(8);
        let mut blk = BitSet::new(8);
        for i in 0..5 {
            s.push_back(i, 0);
        }
        blk.set(s.slot_at(2));
        assert!(s.advance_safe(&[&blk]));
        // Positions 0..=2 safe; first unsafe is seq 3.
        assert_eq!(s.first_unsafe_seq(), 3);
        assert!(!s.advance_safe(&[&blk]), "no change, no progress");
        blk.clear(s.slot_at(2));
        assert!(s.advance_safe(&[&blk]));
        assert_eq!(s.first_unsafe_seq(), u64::MAX);
    }

    #[test]
    fn frontier_never_regresses_on_blocker_inside_prefix() {
        let mut s = slab(8);
        let mut blk = BitSet::new(8);
        for i in 0..4 {
            s.push_back(i, 0);
        }
        s.advance_safe(&[]);
        assert_eq!(s.first_unsafe_seq(), u64::MAX);
        // A late blocker on an already-safe entry must not untaint-revoke.
        blk.set(s.slot_at(1));
        assert!(!s.advance_safe(&[&blk]));
        assert_eq!(s.first_unsafe_seq(), u64::MAX);
    }

    #[test]
    fn squash_clamps_frontier_and_commit_slides_it() {
        let mut s = slab(8);
        let mut blk = BitSet::new(8);
        for i in 0..6 {
            s.push_back(i, 0);
        }
        blk.set(s.slot_at(3));
        s.advance_safe(&[&blk]); // safe 0..=3, first unsafe seq 4
        assert_eq!(s.first_unsafe_seq(), 4);
        s.pop_back(); // kill seq 5
        assert_eq!(s.first_unsafe_seq(), 4, "frontier entry still live");
        s.pop_back(); // kill seq 4 — the frontier entry itself
        assert_eq!(s.first_unsafe_seq(), u64::MAX, "all live entries safe");
        s.pop_front(); // commit seq 0
        assert_eq!(s.len(), 3);
        // New push lands exactly at the frontier.
        s.push_back(6, 0);
        assert_eq!(s.first_unsafe_seq(), 6);
    }

    #[test]
    fn committing_an_unsafe_head_untaints_it() {
        let mut s = slab(4);
        for i in 0..3 {
            s.push_back(i, 0);
        }
        assert_eq!(s.first_unsafe_seq(), 0);
        s.pop_front(); // retire seq 0 while still unsafe
        assert_eq!(s.first_unsafe_seq(), 1, "frontier follows the head");
        s.pop_front();
        s.pop_front();
        assert_eq!(s.first_unsafe_seq(), u64::MAX);
    }

    #[test]
    fn collect_mask_is_window_ordered_across_wrap() {
        let mut s = slab(4);
        for i in 0..4 {
            s.push_back(i, 0);
        }
        s.advance_safe(&[]);
        s.pop_front();
        s.pop_front();
        s.push_back(4, 0);
        s.push_back(5, 0); // window seqs: 2,3,4,5 with head at slot 2
        let mut m = BitSet::new(4);
        for sl in s.slots() {
            m.set(sl);
        }
        let mut out = Vec::new();
        s.collect_mask(&m, &mut out);
        let seqs: Vec<u64> = out.iter().map(|&(_, q)| q).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5], "oldest-first despite wrap");
    }

    #[test]
    fn first_blocker_respects_window_order_not_slot_order() {
        let mut s = slab(4);
        for i in 0..4 {
            s.push_back(i, 0);
        }
        s.advance_safe(&[]);
        s.pop_front();
        s.pop_front();
        s.push_back(4, 0);
        s.push_back(5, 0); // slots for seq 4,5 are 0,1 — numerically lowest
        let mut blk = BitSet::new(4);
        blk.set(s.slot_at(1)); // blocker on seq 3
        blk.set(s.slot_at(2)); // and on seq 4
        s.advance_safe(&[&blk]);
        // Safe must stop at seq 3 (window pos 1), not at the low slot.
        assert_eq!(s.first_unsafe_seq(), 4);
    }
}
