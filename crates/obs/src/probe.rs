//! The per-core observability probe the cycle loop talks to.
//!
//! [`PipelineObs`] bundles the occupancy histograms and optional event
//! trace for one core. The core owns it as `Option<Box<PipelineObs>>`
//! (mirroring its `PipelineTrace` hook), so when observability is
//! disabled the hot path pays exactly one `Option` check per cycle and
//! performs **no allocation** — [`ObsConfig::default`] is fully off.

use crate::hist::Histogram;
use crate::metrics::MetricsSnapshot;
use crate::trace::{Event, EventKind, EventTrace};

/// What to observe during a run. The default is everything off: the
/// simulator then never constructs a [`PipelineObs`] at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ObsConfig {
    /// Sample ROB/IQ/LQ/SQ/MSHR fill levels every cycle into
    /// occupancy histograms.
    pub occupancy: bool,
    /// Keep up to this many structured pipeline events (0 disables the
    /// event trace).
    pub trace_capacity: usize,
}

impl ObsConfig {
    /// Everything off (the allocation-free default).
    pub const OFF: ObsConfig = ObsConfig { occupancy: false, trace_capacity: 0 };

    /// Occupancy histograms only — the cheap always-on-able profile.
    #[must_use]
    pub fn occupancy() -> Self {
        ObsConfig { occupancy: true, trace_capacity: 0 }
    }

    /// Occupancy histograms plus an event trace bounded at `capacity`
    /// events.
    #[must_use]
    pub fn full(capacity: usize) -> Self {
        ObsConfig { occupancy: true, trace_capacity: capacity }
    }

    /// Whether any observation is requested (if `false`, no
    /// [`PipelineObs`] should be constructed).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.occupancy || self.trace_capacity > 0
    }
}

/// Capacities of the sampled pipeline structures, used to size the
/// occupancy histogram buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueCaps {
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Issue-queue entries.
    pub iq: usize,
    /// Load-queue entries.
    pub lq: usize,
    /// Store-queue entries.
    pub sq: usize,
    /// L1 MSHR entries.
    pub mshr: usize,
}

/// Occupancy histograms + optional event trace for one core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineObs {
    cfg: ObsConfig,
    /// ROB fill level per cycle.
    pub rob: Histogram,
    /// Issue-queue fill level per cycle.
    pub iq: Histogram,
    /// Load-queue fill level per cycle.
    pub lq: Histogram,
    /// Store-queue fill level per cycle.
    pub sq: Histogram,
    /// L1 MSHR fill level per cycle.
    pub mshr: Histogram,
    trace: Option<EventTrace>,
}

impl PipelineObs {
    /// A probe for a core whose structures have the given capacities.
    #[must_use]
    pub fn new(cfg: ObsConfig, caps: QueueCaps) -> Self {
        PipelineObs {
            cfg,
            rob: Histogram::occupancy(caps.rob),
            iq: Histogram::occupancy(caps.iq),
            lq: Histogram::occupancy(caps.lq),
            sq: Histogram::occupancy(caps.sq),
            mshr: Histogram::occupancy(caps.mshr),
            trace: (cfg.trace_capacity > 0).then(|| EventTrace::with_capacity(cfg.trace_capacity)),
        }
    }

    /// Whether the caller should gather occupancy inputs this cycle
    /// (lets the core skip the MSHR scan when sampling is off).
    #[inline]
    #[must_use]
    pub fn wants_occupancy(&self) -> bool {
        self.cfg.occupancy
    }

    /// Records one cycle's fill levels (no-op unless
    /// [`ObsConfig::occupancy`] is set).
    #[inline]
    pub fn sample(&mut self, rob: u64, iq: u64, lq: u64, sq: u64, mshr: u64) {
        if self.cfg.occupancy {
            self.rob.record(rob);
            self.iq.record(iq);
            self.lq.record(lq);
            self.sq.record(sq);
            self.mshr.record(mshr);
        }
    }

    /// Records `n` identical cycles' fill levels in one step (no-op
    /// unless [`ObsConfig::occupancy`] is set). Equivalent to calling
    /// [`PipelineObs::sample`] with the same values `n` times — used by
    /// the core's quiescence fast-forward, where fill levels are
    /// provably constant over the skipped interval.
    #[inline]
    pub fn sample_n(&mut self, rob: u64, iq: u64, lq: u64, sq: u64, mshr: u64, n: u64) {
        if self.cfg.occupancy {
            self.rob.record_n(rob, n);
            self.iq.record_n(iq, n);
            self.lq.record_n(lq, n);
            self.sq.record_n(sq, n);
            self.mshr.record_n(mshr, n);
        }
    }

    /// Records one pipeline event (no-op unless an event trace was
    /// configured).
    #[inline]
    pub fn emit(&mut self, cycle: u64, seq: u64, pc: u64, kind: EventKind) {
        if let Some(t) = &mut self.trace {
            t.record(Event { cycle, seq, pc, kind });
        }
    }

    /// The event trace, if one was configured.
    #[must_use]
    pub fn trace(&self) -> Option<&EventTrace> {
        self.trace.as_ref()
    }

    /// The configuration this probe was built with.
    #[must_use]
    pub fn config(&self) -> ObsConfig {
        self.cfg
    }

    /// Registers the occupancy histograms (and trace drop counter, if
    /// tracing) under `prefix` in `m`, e.g.
    /// `pipeline.occupancy.rob`.
    pub fn export(&self, m: &mut MetricsSnapshot, prefix: &str) {
        if self.cfg.occupancy {
            m.add_histogram(&format!("{prefix}.occupancy.rob"), &self.rob);
            m.add_histogram(&format!("{prefix}.occupancy.iq"), &self.iq);
            m.add_histogram(&format!("{prefix}.occupancy.lq"), &self.lq);
            m.add_histogram(&format!("{prefix}.occupancy.sq"), &self.sq);
            m.add_histogram(&format!("{prefix}.occupancy.mshr"), &self.mshr);
        }
        if let Some(t) = &self.trace {
            m.add(&format!("{prefix}.trace.events"), t.events().len() as u64);
            m.add(&format!("{prefix}.trace.dropped"), t.dropped());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SquashCause;

    const CAPS: QueueCaps = QueueCaps { rob: 192, iq: 32, lq: 32, sq: 32, mshr: 16 };

    #[test]
    fn default_config_is_off() {
        assert!(!ObsConfig::default().enabled());
        assert_eq!(ObsConfig::default(), ObsConfig::OFF);
        assert!(ObsConfig::occupancy().enabled());
        assert!(ObsConfig::full(1024).enabled());
    }

    #[test]
    fn sampling_respects_config() {
        let mut off = PipelineObs::new(ObsConfig { occupancy: false, trace_capacity: 8 }, CAPS);
        off.sample(10, 1, 2, 3, 4);
        assert_eq!(off.rob.count(), 0);
        assert!(!off.wants_occupancy());

        let mut on = PipelineObs::new(ObsConfig::occupancy(), CAPS);
        on.sample(10, 1, 2, 3, 4);
        assert_eq!(on.rob.count(), 1);
        assert_eq!(on.mshr.sum(), 4);
        assert!(on.trace().is_none());
    }

    #[test]
    fn sample_n_equals_repeated_sample() {
        let mut bulk = PipelineObs::new(ObsConfig::occupancy(), CAPS);
        bulk.sample_n(10, 1, 2, 3, 4, 25);
        let mut stepped = PipelineObs::new(ObsConfig::occupancy(), CAPS);
        for _ in 0..25 {
            stepped.sample(10, 1, 2, 3, 4);
        }
        assert_eq!(bulk, stepped);

        let mut off = PipelineObs::new(ObsConfig::OFF, CAPS);
        off.sample_n(10, 1, 2, 3, 4, 25);
        assert_eq!(off.rob.count(), 0);
    }

    #[test]
    fn emit_respects_config() {
        let mut no_trace = PipelineObs::new(ObsConfig::occupancy(), CAPS);
        no_trace.emit(1, 0, 0, EventKind::Dispatch);
        assert!(no_trace.trace().is_none());

        let mut traced = PipelineObs::new(ObsConfig::full(4), CAPS);
        traced.emit(1, 0, 0, EventKind::Dispatch);
        traced.emit(2, 0, 0, EventKind::Squash { cause: SquashCause::Branch });
        assert_eq!(traced.trace().unwrap().events().len(), 2);
    }

    #[test]
    fn export_registers_expected_paths() {
        let mut obs = PipelineObs::new(ObsConfig::full(4), CAPS);
        obs.sample(10, 1, 2, 3, 4);
        obs.emit(1, 0, 0, EventKind::Dispatch);
        let mut m = MetricsSnapshot::new();
        obs.export(&mut m, "pipeline");
        assert!(m.histogram("pipeline.occupancy.rob").is_some());
        assert!(m.histogram("pipeline.occupancy.mshr").is_some());
        assert_eq!(m.counter("pipeline.trace.events"), Some(1));
        assert_eq!(m.counter("pipeline.trace.dropped"), Some(0));
    }
}
