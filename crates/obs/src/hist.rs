//! Fixed-bound histograms for per-cycle occupancy sampling.
//!
//! A [`Histogram`] is a set of cumulative-style buckets over `u64`
//! samples plus exact `count`/`sum`/`max` tracking, so mean occupancy is
//! exact even though the distribution itself is bucketed. Bucket bounds
//! are fixed at construction; two histograms merge only if their bounds
//! are identical, which keeps parallel-merge deterministic (bucket
//! counts are integers, so merge order cannot change the result).

/// Number of linear buckets [`Histogram::occupancy`] carves a capacity
/// into (plus one implicit overflow bucket).
pub const OCCUPANCY_BUCKETS: usize = 8;

/// A bucketed distribution of `u64` samples with exact count/sum/max.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Inclusive upper bounds of each bucket, strictly increasing.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` counts; the last is the overflow bucket
    /// (samples greater than every bound).
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bucket bounds.
    ///
    /// Bounds must be strictly increasing and non-empty.
    #[must_use]
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// A histogram sized for occupancy samples of a structure holding at
    /// most `capacity` entries: up to [`OCCUPANCY_BUCKETS`] linear
    /// buckets ending exactly at `capacity`, so the last regular bucket
    /// means "completely full".
    #[must_use]
    pub fn occupancy(capacity: usize) -> Self {
        let cap = capacity.max(1) as u64;
        let mut bounds = Vec::with_capacity(OCCUPANCY_BUCKETS);
        for i in 1..=OCCUPANCY_BUCKETS as u64 {
            let b = cap * i / OCCUPANCY_BUCKETS as u64;
            if bounds.last() != Some(&b) && b > 0 {
                bounds.push(b);
            }
        }
        Histogram::with_bounds(&bounds)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Records `n` identical samples of value `v` in one step.
    ///
    /// Exactly equivalent to calling [`Histogram::record`]`(v)` `n`
    /// times — same bucket counts, `count`, `sum`, and `max` — so bulk
    /// recording a fast-forwarded quiescent interval stays merge- and
    /// byte-compatible with a cycle-stepped run. `n == 0` is a no-op.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += n;
        self.count += n;
        self.sum += v * n;
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`.
    ///
    /// # Panics
    /// If the two histograms were built with different bucket bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket bounds this histogram was built with.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket sample counts (`bounds().len() + 1` entries; the last
    /// is the overflow bucket).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Renders the histogram as a single-line JSON object with stable
    /// key order: `count`, `sum`, `max`, `mean`, then `buckets` as a
    /// list of `{"le": bound, "count": n}` objects ending with the
    /// overflow bucket (`"le": "inf"`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.4},\"buckets\":[",
            self.count,
            self.sum,
            self.max,
            self.mean()
        );
        for (i, b) in self.bounds.iter().enumerate() {
            out.push_str(&format!("{{\"le\":{},\"count\":{}}},", b, self.counts[i]));
        }
        out.push_str(&format!(
            "{{\"le\":\"inf\",\"count\":{}}}]}}",
            self.counts[self.bounds.len()]
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_bounds_end_at_capacity() {
        let h = Histogram::occupancy(192);
        assert_eq!(h.bounds().last(), Some(&192));
        assert_eq!(h.bounds().len(), OCCUPANCY_BUCKETS);
        // Tiny capacities dedupe to fewer buckets but stay valid.
        let t = Histogram::occupancy(3);
        assert_eq!(t.bounds().last(), Some(&3));
        assert!(t.bounds().len() <= 3);
        let one = Histogram::occupancy(1);
        assert_eq!(one.bounds(), &[1]);
    }

    #[test]
    fn record_tracks_exact_moments() {
        let mut h = Histogram::occupancy(8);
        for v in [0, 1, 4, 8, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 21);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 4.2).abs() < 1e-9);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 5);
    }

    #[test]
    fn overflow_bucket_catches_out_of_range() {
        let mut h = Histogram::with_bounds(&[2, 4]);
        h.record(5);
        h.record(100);
        assert_eq!(h.bucket_counts(), &[0, 0, 2]);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Histogram::occupancy(16);
        let mut b = Histogram::occupancy(16);
        for v in 0..10 {
            a.record(v);
        }
        for v in 5..20 {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 25);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        for (v, n) in [(0u64, 1u64), (3, 7), (8, 1000), (100, 2), (5, 0)] {
            let mut bulk = Histogram::occupancy(8);
            bulk.record_n(v, n);
            let mut stepped = Histogram::occupancy(8);
            for _ in 0..n {
                stepped.record(v);
            }
            assert_eq!(bulk, stepped, "v={v} n={n}");
            assert_eq!(bulk.to_json(), stepped.to_json(), "v={v} n={n}");
        }
    }

    #[test]
    fn record_n_stays_merge_compatible() {
        // A bulk-recorded histogram merged with a stepped one must equal
        // the all-stepped merge — the cycle-exactness requirement for
        // fast-forwarded obs sampling.
        let mut stepped = Histogram::occupancy(16);
        let mut mixed = Histogram::occupancy(16);
        for v in 0..10 {
            stepped.record(v);
            mixed.record(v);
        }
        let mut tail_stepped = Histogram::occupancy(16);
        for _ in 0..50 {
            tail_stepped.record(12);
        }
        let mut tail_bulk = Histogram::occupancy(16);
        tail_bulk.record_n(12, 50);
        stepped.merge(&tail_stepped);
        mixed.merge(&tail_bulk);
        assert_eq!(stepped, mixed);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::occupancy(16);
        a.merge(&Histogram::occupancy(32));
    }

    #[test]
    fn json_is_balanced_and_ordered() {
        let mut h = Histogram::occupancy(4);
        h.record(2);
        let j = h.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.starts_with("{\"count\":1,\"sum\":2,\"max\":2,\"mean\":2.0000"));
        assert!(j.contains("\"le\":\"inf\""));
    }
}
