//! # sdo-obs — observability layer for the SDO simulator
//!
//! Three cooperating pieces, all dependency-free:
//!
//! * a **metrics registry** ([`MetricsSnapshot`]) — typed counters and
//!   histograms keyed by hierarchical dotted path
//!   (`core.squash.obl_fail`, `mem.l1.hits`), with a canonical merge
//!   that is deterministic regardless of how many parallel workers
//!   produced the per-run snapshots, and stable-order JSON rendering;
//! * **occupancy histograms** ([`Histogram`]) — per-cycle ROB / IQ /
//!   LQ / SQ / MSHR fill levels bucketed against structure capacity;
//! * a **structured event trace** ([`EventTrace`]) — a bounded JSONL
//!   stream of dispatch / issue / obl-probe / validate / expose /
//!   squash events that round-trips through [`EventTrace::parse_jsonl`].
//!
//! The per-core façade is [`PipelineObs`], constructed from an
//! [`ObsConfig`]. The default config is fully off, and the simulator
//! then allocates nothing and pays one `Option` check per cycle — the
//! zero-cost-when-disabled contract the harness relies on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hist;
mod metrics;
mod observable;
mod probe;
mod trace;

pub use hist::{Histogram, OCCUPANCY_BUCKETS};
pub use metrics::{Metric, MetricsSnapshot};
pub use observable::{is_observable, Divergence, ObservableTrace};
pub use probe::{ObsConfig, PipelineObs, QueueCaps};
pub use trace::{Event, EventKind, EventTrace, MemOp, SquashCause};
