//! Structured pipeline event trace with bounded buffering and a JSONL
//! wire format.
//!
//! Where `sdo_uarch::PipelineTrace` renders a human-readable per-seq
//! table, [`EventTrace`] records machine-readable [`Event`]s — one JSON
//! object per line — so external tooling can reconstruct the exact
//! interleaving of dispatch, issue, oblivious probes, validations,
//! exposures and squashes. The buffer is capacity-bounded: once full,
//! further events are counted in [`EventTrace::dropped`] instead of
//! allocated, keeping long runs memory-safe.
//!
//! The format round-trips: [`EventTrace::to_jsonl`] output parses back
//! with [`EventTrace::parse_jsonl`] into equal events (no serde in the
//! workspace, so both directions are hand-rolled against the same
//! field set).

/// Why a pipeline squash happened (mirrors
/// `sdo_uarch::stats::SquashCounts` one-to-one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashCause {
    /// Branch misprediction.
    Branch,
    /// SDO oblivious-load FSM failure (no level accepted the probe).
    OblFail,
    /// Validation mismatch (value changed between probe and commit).
    Validation,
    /// Memory consistency violation detected at resolve.
    Consistency,
    /// Floating-point SDO fallback failure.
    FpFail,
}

impl SquashCause {
    /// Stable wire name used in the JSONL `cause` field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SquashCause::Branch => "branch",
            SquashCause::OblFail => "obl_fail",
            SquashCause::Validation => "validation",
            SquashCause::Consistency => "consistency",
            SquashCause::FpFail => "fp_fail",
        }
    }

    fn parse(s: &str) -> Option<SquashCause> {
        Some(match s {
            "branch" => SquashCause::Branch,
            "obl_fail" => SquashCause::OblFail,
            "validation" => SquashCause::Validation,
            "consistency" => SquashCause::Consistency,
            "fp_fail" => SquashCause::FpFail,
            _ => return None,
        })
    }
}

/// Which kind of cache-state-changing access a
/// [`EventKind::MemAccess`] records. Oblivious probes are deliberately
/// *not* in this set: they never fill or touch replacement state, so
/// they are not part of the attacker-visible cache-touch sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// A demand load sent down the cache hierarchy (fills on miss).
    Load,
    /// A committed store.
    Store,
    /// An InvisiSpec-style validation re-read (a normal, filling load).
    Validate,
    /// An exposure access (safe re-execution that may fill).
    Expose,
}

impl MemOp {
    /// Stable wire name used in the JSONL `op` field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MemOp::Load => "load",
            MemOp::Store => "store",
            MemOp::Validate => "validate",
            MemOp::Expose => "expose",
        }
    }

    fn parse(s: &str) -> Option<MemOp> {
        Some(match s {
            "load" => MemOp::Load,
            "store" => MemOp::Store,
            "validate" => MemOp::Validate,
            "expose" => MemOp::Expose,
            _ => return None,
        })
    }
}

/// What happened to an instruction at a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Entered the ROB (and IQ / LQ / SQ as appropriate).
    Dispatch,
    /// Left the issue queue for a functional unit or the memory system.
    Issue,
    /// Retired architecturally.
    Commit,
    /// SDO oblivious lookup issued; `level` is the predicted cache
    /// level (1–3) or 4 for DRAM.
    OblProbe {
        /// Predicted service level: 1 = L1, 2 = L2, 3 = L3, 4 = DRAM.
        level: u8,
    },
    /// InvisiSpec-style validation access; `matched` is whether the
    /// re-read value equalled the obliviously obtained one.
    Validate {
        /// Whether validation matched (mismatch forces a squash).
        matched: bool,
    },
    /// Exposure access (safe re-execution that may update cache state).
    Expose,
    /// Pipeline squash with its root cause.
    Squash {
        /// Root cause recorded by the squash site.
        cause: SquashCause,
    },
    /// A cache-state-changing memory access: the attacker-visible
    /// cache-touch sequence (demand loads, committed stores,
    /// validations, exposures). `tainted` is the STT taint status of the
    /// access's operands at the access — the invariant oracle's input.
    MemAccess {
        /// Cache line index touched (byte address / 64).
        line: u64,
        /// What kind of access.
        op: MemOp,
        /// Whether the operands were STT-tainted when the access issued.
        tainted: bool,
    },
    /// A transmit-class FP op (mul/div/sqrt) left the issue queue.
    FpTransmit {
        /// Whether its operands were STT-tainted at issue.
        tainted: bool,
        /// Whether it executed as the data-oblivious (predict-normal)
        /// variant rather than with operand-dependent latency/occupancy.
        oblivious: bool,
    },
    /// A predictor (location / branch / BTB) was trained.
    PredictorUpdate {
        /// Whether the training input derived from tainted state.
        tainted: bool,
    },
    /// A per-level Obl-Ld response arrived at the wait buffer: the
    /// deepest level an oblivious load actually touched is the max of
    /// these (the oracle checks it never exceeds the predicted slice).
    OblTouch {
        /// Responding level: 1 = L1, 2 = L2, 3 = L3, 4 = DRAM.
        level: u8,
    },
    /// An Obl-Ld's address operand untainted (the FSM's Safe event) —
    /// the point after which validations, exposures, SDO squashes and
    /// predictor training become legal for that load.
    OblSafe,
}

impl EventKind {
    /// Stable wire name used in the JSONL `event` field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Dispatch => "dispatch",
            EventKind::Issue => "issue",
            EventKind::Commit => "commit",
            EventKind::OblProbe { .. } => "obl_probe",
            EventKind::Validate { .. } => "validate",
            EventKind::Expose => "expose",
            EventKind::Squash { .. } => "squash",
            EventKind::MemAccess { .. } => "mem",
            EventKind::FpTransmit { .. } => "fp_transmit",
            EventKind::PredictorUpdate { .. } => "pred_update",
            EventKind::OblTouch { .. } => "obl_touch",
            EventKind::OblSafe => "obl_safe",
        }
    }
}

/// One traced pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Cycle at which the event happened.
    pub cycle: u64,
    /// Dynamic sequence number of the instruction involved.
    pub seq: u64,
    /// Program counter of the instruction involved.
    pub pc: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"cycle\":{},\"seq\":{},\"pc\":{},\"event\":\"{}\"",
            self.cycle,
            self.seq,
            self.pc,
            self.kind.name()
        );
        match self.kind {
            EventKind::OblProbe { level } => out.push_str(&format!(",\"level\":{level}")),
            EventKind::Validate { matched } => out.push_str(&format!(",\"matched\":{matched}")),
            EventKind::Squash { cause } => {
                out.push_str(&format!(",\"cause\":\"{}\"", cause.name()));
            }
            EventKind::MemAccess { line, op, tainted } => {
                out.push_str(&format!(
                    ",\"line\":{line},\"op\":\"{}\",\"tainted\":{tainted}",
                    op.name()
                ));
            }
            EventKind::FpTransmit { tainted, oblivious } => {
                out.push_str(&format!(",\"tainted\":{tainted},\"oblivious\":{oblivious}"));
            }
            EventKind::PredictorUpdate { tainted } => {
                out.push_str(&format!(",\"tainted\":{tainted}"));
            }
            EventKind::OblTouch { level } => out.push_str(&format!(",\"level\":{level}")),
            _ => {}
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line produced by [`Event::to_json`].
    ///
    /// # Errors
    /// Returns a description of the first malformed or missing field.
    pub fn parse(line: &str) -> Result<Event, String> {
        let cycle = int_field(line, "cycle")?;
        let seq = int_field(line, "seq")?;
        let pc = int_field(line, "pc")?;
        let kind = match str_field(line, "event")? {
            "dispatch" => EventKind::Dispatch,
            "issue" => EventKind::Issue,
            "commit" => EventKind::Commit,
            "obl_probe" => EventKind::OblProbe {
                level: int_field(line, "level")? as u8,
            },
            "validate" => EventKind::Validate { matched: bool_field(line, "matched")? },
            "expose" => EventKind::Expose,
            "squash" => {
                let c = str_field(line, "cause")?;
                EventKind::Squash {
                    cause: SquashCause::parse(c)
                        .ok_or_else(|| format!("unknown squash cause {c:?}"))?,
                }
            }
            "mem" => {
                let o = str_field(line, "op")?;
                EventKind::MemAccess {
                    line: int_field(line, "line")?,
                    op: MemOp::parse(o).ok_or_else(|| format!("unknown mem op {o:?}"))?,
                    tainted: bool_field(line, "tainted")?,
                }
            }
            "fp_transmit" => EventKind::FpTransmit {
                tainted: bool_field(line, "tainted")?,
                oblivious: bool_field(line, "oblivious")?,
            },
            "pred_update" => EventKind::PredictorUpdate { tainted: bool_field(line, "tainted")? },
            "obl_touch" => EventKind::OblTouch { level: int_field(line, "level")? as u8 },
            "obl_safe" => EventKind::OblSafe,
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(Event { cycle, seq, pc, kind })
    }
}

/// The raw token following `"key":` in `line` (up to the next `,` or
/// `}`), trimmed.
fn raw_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .ok_or_else(|| format!("missing field {key:?} in {line:?}"))?
        + pat.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated field {key:?} in {line:?}"))?;
    Ok(rest[..end].trim())
}

fn int_field(line: &str, key: &str) -> Result<u64, String> {
    raw_field(line, key)?
        .parse()
        .map_err(|e| format!("bad integer for {key:?}: {e}"))
}

fn bool_field(line: &str, key: &str) -> Result<bool, String> {
    match raw_field(line, key)? {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("bad bool for {key:?}: {other:?}")),
    }
}

fn str_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let raw = raw_field(line, key)?;
    raw.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("field {key:?} is not a string: {raw:?}"))
}

/// A capacity-bounded buffer of [`Event`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventTrace {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventTrace {
    /// An empty trace that keeps at most `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventTrace {
            // Defer the big allocation until the first event; harness
            // configs often enable tracing they never exercise.
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event, or counts it as dropped once the buffer holds
    /// `capacity` events.
    #[inline]
    pub fn record(&mut self, ev: Event) {
        if self.events.len() < self.capacity {
            if self.events.capacity() == 0 {
                self.events.reserve_exact(self.capacity.min(4096));
            }
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The buffered events, in record order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events rejected after the buffer filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum number of buffered events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Serializes the trace as JSONL: one event object per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses JSONL produced by [`EventTrace::to_jsonl`] back into a
    /// trace (capacity = number of parsed events, dropped = 0).
    ///
    /// # Errors
    /// Returns the line number (1-based) and cause of the first parse
    /// failure.
    pub fn parse_jsonl(text: &str) -> Result<EventTrace, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(Event::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(EventTrace { capacity: events.len(), events, dropped: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event { cycle: 1, seq: 0, pc: 0, kind: EventKind::Dispatch },
            Event { cycle: 2, seq: 0, pc: 0, kind: EventKind::Issue },
            Event { cycle: 3, seq: 1, pc: 4, kind: EventKind::OblProbe { level: 2 } },
            Event { cycle: 9, seq: 1, pc: 4, kind: EventKind::Validate { matched: true } },
            Event { cycle: 9, seq: 2, pc: 8, kind: EventKind::Validate { matched: false } },
            Event { cycle: 10, seq: 2, pc: 8, kind: EventKind::Squash { cause: SquashCause::Validation } },
            Event { cycle: 11, seq: 3, pc: 12, kind: EventKind::Expose },
            Event { cycle: 12, seq: 0, pc: 0, kind: EventKind::Commit },
            Event { cycle: 13, seq: 4, pc: 16, kind: EventKind::Squash { cause: SquashCause::Branch } },
            Event {
                cycle: 14,
                seq: 5,
                pc: 20,
                kind: EventKind::MemAccess { line: 0x4_0000, op: MemOp::Load, tainted: true },
            },
            Event {
                cycle: 15,
                seq: 6,
                pc: 24,
                kind: EventKind::MemAccess { line: 7, op: MemOp::Store, tainted: false },
            },
            Event {
                cycle: 16,
                seq: 7,
                pc: 28,
                kind: EventKind::FpTransmit { tainted: true, oblivious: true },
            },
            Event { cycle: 17, seq: 8, pc: 32, kind: EventKind::PredictorUpdate { tainted: false } },
            Event { cycle: 18, seq: 1, pc: 4, kind: EventKind::OblTouch { level: 3 } },
            Event { cycle: 19, seq: 1, pc: 4, kind: EventKind::OblSafe },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let mut t = EventTrace::with_capacity(64);
        for ev in sample_events() {
            t.record(ev);
        }
        let text = t.to_jsonl();
        let back = EventTrace::parse_jsonl(&text).unwrap();
        assert_eq!(back.events(), t.events());
        // And the re-serialization is byte-identical.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn bounded_buffer_counts_drops() {
        let mut t = EventTrace::with_capacity(2);
        for ev in sample_events() {
            t.record(ev);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 13);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = EventTrace::parse_jsonl("{\"cycle\":1,\"seq\":0,\"pc\":0,\"event\":\"dispatch\"}\nnot json\n")
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn parse_rejects_unknown_kind_and_cause() {
        assert!(Event::parse("{\"cycle\":1,\"seq\":0,\"pc\":0,\"event\":\"nap\"}").is_err());
        assert!(
            Event::parse("{\"cycle\":1,\"seq\":0,\"pc\":0,\"event\":\"squash\",\"cause\":\"tuesday\"}")
                .is_err()
        );
    }

    #[test]
    fn every_kind_names_distinctly() {
        let t = sample_events();
        let text: Vec<String> = t.iter().map(Event::to_json).collect();
        assert!(text[2].contains("\"level\":2"));
        assert!(text[3].contains("\"matched\":true"));
        assert!(text[5].contains("\"cause\":\"validation\""));
        assert!(text[9].contains("\"op\":\"load\"") && text[9].contains("\"tainted\":true"));
        assert!(text[10].contains("\"op\":\"store\"") && text[10].contains("\"tainted\":false"));
        assert!(text[11].contains("\"oblivious\":true"));
        assert!(text[13].contains("\"event\":\"obl_touch\"") && text[13].contains("\"level\":3"));
        assert!(text[14].ends_with("\"event\":\"obl_safe\"}"));
    }

    #[test]
    fn parse_rejects_unknown_mem_op() {
        assert!(Event::parse(
            "{\"cycle\":1,\"seq\":0,\"pc\":0,\"event\":\"mem\",\"line\":4,\"op\":\"poke\",\"tainted\":false}"
        )
        .is_err());
    }
}
