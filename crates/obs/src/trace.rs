//! Structured pipeline event trace with bounded buffering and a JSONL
//! wire format.
//!
//! Where `sdo_uarch::PipelineTrace` renders a human-readable per-seq
//! table, [`EventTrace`] records machine-readable [`Event`]s — one JSON
//! object per line — so external tooling can reconstruct the exact
//! interleaving of dispatch, issue, oblivious probes, validations,
//! exposures and squashes. The buffer is capacity-bounded: once full,
//! further events are counted in [`EventTrace::dropped`] instead of
//! allocated, keeping long runs memory-safe.
//!
//! The format round-trips: [`EventTrace::to_jsonl`] output parses back
//! with [`EventTrace::parse_jsonl`] into equal events (no serde in the
//! workspace, so both directions are hand-rolled against the same
//! field set).

/// Why a pipeline squash happened (mirrors
/// `sdo_uarch::stats::SquashCounts` one-to-one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashCause {
    /// Branch misprediction.
    Branch,
    /// SDO oblivious-load FSM failure (no level accepted the probe).
    OblFail,
    /// Validation mismatch (value changed between probe and commit).
    Validation,
    /// Memory consistency violation detected at resolve.
    Consistency,
    /// Floating-point SDO fallback failure.
    FpFail,
}

impl SquashCause {
    /// Stable wire name used in the JSONL `cause` field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SquashCause::Branch => "branch",
            SquashCause::OblFail => "obl_fail",
            SquashCause::Validation => "validation",
            SquashCause::Consistency => "consistency",
            SquashCause::FpFail => "fp_fail",
        }
    }

    fn parse(s: &str) -> Option<SquashCause> {
        Some(match s {
            "branch" => SquashCause::Branch,
            "obl_fail" => SquashCause::OblFail,
            "validation" => SquashCause::Validation,
            "consistency" => SquashCause::Consistency,
            "fp_fail" => SquashCause::FpFail,
            _ => return None,
        })
    }
}

/// What happened to an instruction at a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Entered the ROB (and IQ / LQ / SQ as appropriate).
    Dispatch,
    /// Left the issue queue for a functional unit or the memory system.
    Issue,
    /// Retired architecturally.
    Commit,
    /// SDO oblivious lookup issued; `level` is the predicted cache
    /// level (1–3) or 4 for DRAM.
    OblProbe {
        /// Predicted service level: 1 = L1, 2 = L2, 3 = L3, 4 = DRAM.
        level: u8,
    },
    /// InvisiSpec-style validation access; `matched` is whether the
    /// re-read value equalled the obliviously obtained one.
    Validate {
        /// Whether validation matched (mismatch forces a squash).
        matched: bool,
    },
    /// Exposure access (safe re-execution that may update cache state).
    Expose,
    /// Pipeline squash with its root cause.
    Squash {
        /// Root cause recorded by the squash site.
        cause: SquashCause,
    },
}

impl EventKind {
    /// Stable wire name used in the JSONL `event` field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Dispatch => "dispatch",
            EventKind::Issue => "issue",
            EventKind::Commit => "commit",
            EventKind::OblProbe { .. } => "obl_probe",
            EventKind::Validate { .. } => "validate",
            EventKind::Expose => "expose",
            EventKind::Squash { .. } => "squash",
        }
    }
}

/// One traced pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Cycle at which the event happened.
    pub cycle: u64,
    /// Dynamic sequence number of the instruction involved.
    pub seq: u64,
    /// Program counter of the instruction involved.
    pub pc: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"cycle\":{},\"seq\":{},\"pc\":{},\"event\":\"{}\"",
            self.cycle,
            self.seq,
            self.pc,
            self.kind.name()
        );
        match self.kind {
            EventKind::OblProbe { level } => out.push_str(&format!(",\"level\":{level}")),
            EventKind::Validate { matched } => out.push_str(&format!(",\"matched\":{matched}")),
            EventKind::Squash { cause } => {
                out.push_str(&format!(",\"cause\":\"{}\"", cause.name()));
            }
            _ => {}
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line produced by [`Event::to_json`].
    ///
    /// # Errors
    /// Returns a description of the first malformed or missing field.
    pub fn parse(line: &str) -> Result<Event, String> {
        let cycle = int_field(line, "cycle")?;
        let seq = int_field(line, "seq")?;
        let pc = int_field(line, "pc")?;
        let kind = match str_field(line, "event")? {
            "dispatch" => EventKind::Dispatch,
            "issue" => EventKind::Issue,
            "commit" => EventKind::Commit,
            "obl_probe" => EventKind::OblProbe {
                level: int_field(line, "level")? as u8,
            },
            "validate" => EventKind::Validate {
                matched: match raw_field(line, "matched")? {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("bad bool for 'matched': {other:?}")),
                },
            },
            "expose" => EventKind::Expose,
            "squash" => {
                let c = str_field(line, "cause")?;
                EventKind::Squash {
                    cause: SquashCause::parse(c)
                        .ok_or_else(|| format!("unknown squash cause {c:?}"))?,
                }
            }
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(Event { cycle, seq, pc, kind })
    }
}

/// The raw token following `"key":` in `line` (up to the next `,` or
/// `}`), trimmed.
fn raw_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .ok_or_else(|| format!("missing field {key:?} in {line:?}"))?
        + pat.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated field {key:?} in {line:?}"))?;
    Ok(rest[..end].trim())
}

fn int_field(line: &str, key: &str) -> Result<u64, String> {
    raw_field(line, key)?
        .parse()
        .map_err(|e| format!("bad integer for {key:?}: {e}"))
}

fn str_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let raw = raw_field(line, key)?;
    raw.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("field {key:?} is not a string: {raw:?}"))
}

/// A capacity-bounded buffer of [`Event`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventTrace {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventTrace {
    /// An empty trace that keeps at most `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventTrace {
            // Defer the big allocation until the first event; harness
            // configs often enable tracing they never exercise.
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event, or counts it as dropped once the buffer holds
    /// `capacity` events.
    #[inline]
    pub fn record(&mut self, ev: Event) {
        if self.events.len() < self.capacity {
            if self.events.capacity() == 0 {
                self.events.reserve_exact(self.capacity.min(4096));
            }
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The buffered events, in record order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events rejected after the buffer filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum number of buffered events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Serializes the trace as JSONL: one event object per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses JSONL produced by [`EventTrace::to_jsonl`] back into a
    /// trace (capacity = number of parsed events, dropped = 0).
    ///
    /// # Errors
    /// Returns the line number (1-based) and cause of the first parse
    /// failure.
    pub fn parse_jsonl(text: &str) -> Result<EventTrace, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(Event::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(EventTrace { capacity: events.len(), events, dropped: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event { cycle: 1, seq: 0, pc: 0, kind: EventKind::Dispatch },
            Event { cycle: 2, seq: 0, pc: 0, kind: EventKind::Issue },
            Event { cycle: 3, seq: 1, pc: 4, kind: EventKind::OblProbe { level: 2 } },
            Event { cycle: 9, seq: 1, pc: 4, kind: EventKind::Validate { matched: true } },
            Event { cycle: 9, seq: 2, pc: 8, kind: EventKind::Validate { matched: false } },
            Event { cycle: 10, seq: 2, pc: 8, kind: EventKind::Squash { cause: SquashCause::Validation } },
            Event { cycle: 11, seq: 3, pc: 12, kind: EventKind::Expose },
            Event { cycle: 12, seq: 0, pc: 0, kind: EventKind::Commit },
            Event { cycle: 13, seq: 4, pc: 16, kind: EventKind::Squash { cause: SquashCause::Branch } },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let mut t = EventTrace::with_capacity(64);
        for ev in sample_events() {
            t.record(ev);
        }
        let text = t.to_jsonl();
        let back = EventTrace::parse_jsonl(&text).unwrap();
        assert_eq!(back.events(), t.events());
        // And the re-serialization is byte-identical.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn bounded_buffer_counts_drops() {
        let mut t = EventTrace::with_capacity(2);
        for ev in sample_events() {
            t.record(ev);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 7);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = EventTrace::parse_jsonl("{\"cycle\":1,\"seq\":0,\"pc\":0,\"event\":\"dispatch\"}\nnot json\n")
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn parse_rejects_unknown_kind_and_cause() {
        assert!(Event::parse("{\"cycle\":1,\"seq\":0,\"pc\":0,\"event\":\"nap\"}").is_err());
        assert!(
            Event::parse("{\"cycle\":1,\"seq\":0,\"pc\":0,\"event\":\"squash\",\"cause\":\"tuesday\"}")
                .is_err()
        );
    }

    #[test]
    fn every_kind_names_distinctly() {
        let t = sample_events();
        let text: Vec<String> = t.iter().map(Event::to_json).collect();
        assert!(text[2].contains("\"level\":2"));
        assert!(text[3].contains("\"matched\":true"));
        assert!(text[5].contains("\"cause\":\"validation\""));
    }
}
