//! Attacker-observable projection of a run, for differential testing.
//!
//! The secret-swap checker in `sdo-verify` runs the same program twice
//! with different secret values and asserts that what an attacker can
//! measure is identical. "What an attacker can measure" is modelled
//! here as an [`ObservableTrace`]: the total cycle count, a set of
//! named end-of-run counters (cache hit/miss totals), and the ordered
//! per-cycle sequence of *visible* events — architectural commits and
//! cache-state-changing memory accesses ([`EventKind::Commit`] and
//! [`EventKind::MemAccess`]). Everything else in the event stream
//! (taint bookkeeping, FSM progress, oracle-only events) is projected
//! away: those are checker inputs, not attacker observables.
//!
//! Two traces either match exactly or differ at a first point, which
//! [`ObservableTrace::divergence`] reports as a structured
//! [`Divergence`] so counterexample reports can say *what* leaked
//! (timing, a counter, or a specific cache-line touch) rather than just
//! "differs".

use crate::trace::{Event, EventKind, EventTrace};

/// The attacker-visible projection of one simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservableTrace {
    /// Total cycles the run took (the coarsest timing channel).
    pub cycles: u64,
    /// Named end-of-run counters (e.g. per-level cache hits/misses),
    /// in a caller-chosen canonical order.
    pub counters: Vec<(&'static str, u64)>,
    /// Visible events (commits and memory accesses), in record order.
    pub events: Vec<Event>,
    /// Events the underlying bounded trace dropped. A sound comparison
    /// requires 0 on both sides; [`ObservableTrace::divergence`]
    /// reports any non-zero value as [`Divergence::Dropped`].
    pub dropped: u64,
}

/// Whether an event kind survives the observable projection.
#[must_use]
pub fn is_observable(kind: EventKind) -> bool {
    matches!(kind, EventKind::Commit | EventKind::MemAccess { .. })
}

impl ObservableTrace {
    /// Projects a full [`EventTrace`] (plus run-level cycle count and
    /// counters) down to the attacker-visible subset.
    #[must_use]
    pub fn project(cycles: u64, counters: Vec<(&'static str, u64)>, trace: &EventTrace) -> Self {
        ObservableTrace {
            cycles,
            counters,
            events: trace.events().iter().copied().filter(|e| is_observable(e.kind)).collect(),
            dropped: trace.dropped(),
        }
    }

    /// The first point at which `self` and `other` differ, or `None`
    /// when the two runs are attacker-indistinguishable.
    ///
    /// Comparison order: dropped-event soundness check, total cycles,
    /// counters, then the event streams position by position.
    #[must_use]
    pub fn divergence(&self, other: &ObservableTrace) -> Option<Divergence> {
        if self.dropped != 0 || other.dropped != 0 {
            return Some(Divergence::Dropped { a: self.dropped, b: other.dropped });
        }
        if self.cycles != other.cycles {
            return Some(Divergence::Cycles { a: self.cycles, b: other.cycles });
        }
        for (&(name, a), &(bn, b)) in self.counters.iter().zip(&other.counters) {
            if name != bn || a != b {
                return Some(Divergence::Counter { name, a, b });
            }
        }
        if self.counters.len() != other.counters.len() {
            return Some(Divergence::Counter {
                name: "counter_count",
                a: self.counters.len() as u64,
                b: other.counters.len() as u64,
            });
        }
        for (i, (ea, eb)) in self.events.iter().zip(&other.events).enumerate() {
            if ea != eb {
                return Some(Divergence::Event { index: i, a: *ea, b: *eb });
            }
        }
        if self.events.len() != other.events.len() {
            return Some(Divergence::EventCount {
                a: self.events.len() as u64,
                b: other.events.len() as u64,
            });
        }
        None
    }
}

/// The first observable difference between two runs of the same
/// program under swapped secrets — i.e. what leaked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Divergence {
    /// One side's bounded event buffer overflowed: the comparison is
    /// unsound, re-run with a larger trace capacity.
    Dropped {
        /// Dropped count on side A.
        a: u64,
        /// Dropped count on side B.
        b: u64,
    },
    /// Total run length differs (end-to-end timing channel).
    Cycles {
        /// Cycles on side A.
        a: u64,
        /// Cycles on side B.
        b: u64,
    },
    /// A named counter differs (e.g. an L1 miss count — a cache-state
    /// difference an attacker can probe after the run).
    Counter {
        /// Counter name (from the canonical counter list).
        name: &'static str,
        /// Value on side A.
        a: u64,
        /// Value on side B.
        b: u64,
    },
    /// The visible event streams differ at `index` (a commit happened
    /// at a different cycle, or a different cache line was touched).
    Event {
        /// Position in the visible event stream.
        index: usize,
        /// Event on side A.
        a: Event,
        /// Event on side B.
        b: Event,
    },
    /// One stream is a strict prefix of the other.
    EventCount {
        /// Visible events on side A.
        a: u64,
        /// Visible events on side B.
        b: u64,
    },
}

impl Divergence {
    /// One-line human-readable description (used in reports).
    #[must_use]
    pub fn describe(&self) -> String {
        match *self {
            Divergence::Dropped { a, b } => {
                format!("trace overflow (dropped {a} vs {b} events): comparison unsound")
            }
            Divergence::Cycles { a, b } => format!("cycle count differs: {a} vs {b}"),
            Divergence::Counter { name, a, b } => {
                format!("counter {name} differs: {a} vs {b}")
            }
            Divergence::Event { index, a, b } => format!(
                "visible event {index} differs: {} vs {}",
                a.to_json(),
                b.to_json()
            ),
            Divergence::EventCount { a, b } => {
                format!("visible event count differs: {a} vs {b}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemOp;

    fn ev(cycle: u64, kind: EventKind) -> Event {
        Event { cycle, seq: cycle, pc: 4 * cycle, kind }
    }

    fn trace_with(kinds: &[(u64, EventKind)]) -> EventTrace {
        let mut t = EventTrace::with_capacity(64);
        for &(c, k) in kinds {
            t.record(ev(c, k));
        }
        t
    }

    #[test]
    fn projection_keeps_only_commits_and_mem_accesses() {
        let t = trace_with(&[
            (1, EventKind::Dispatch),
            (2, EventKind::Issue),
            (3, EventKind::MemAccess { line: 9, op: MemOp::Load, tainted: false }),
            (4, EventKind::OblProbe { level: 2 }),
            (5, EventKind::OblSafe),
            (6, EventKind::Commit),
            (7, EventKind::PredictorUpdate { tainted: true }),
        ]);
        let o = ObservableTrace::project(10, vec![("l1.hits", 3)], &t);
        assert_eq!(o.events.len(), 2);
        assert!(o.events.iter().all(|e| is_observable(e.kind)));
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let t = trace_with(&[(1, EventKind::Commit)]);
        let a = ObservableTrace::project(5, vec![("l1.hits", 1)], &t);
        assert_eq!(a.divergence(&a.clone()), None);
    }

    #[test]
    fn divergence_ranks_cycles_before_counters_before_events() {
        let t = trace_with(&[(1, EventKind::Commit)]);
        let a = ObservableTrace::project(5, vec![("l1.hits", 1)], &t);
        let mut b = a.clone();
        b.cycles = 6;
        b.counters[0].1 = 2;
        assert!(matches!(a.divergence(&b), Some(Divergence::Cycles { a: 5, b: 6 })));
        b.cycles = 5;
        assert!(matches!(
            a.divergence(&b),
            Some(Divergence::Counter { name: "l1.hits", a: 1, b: 2 })
        ));
        b.counters[0].1 = 1;
        b.events[0].cycle = 2;
        assert!(matches!(a.divergence(&b), Some(Divergence::Event { index: 0, .. })));
    }

    #[test]
    fn different_line_touch_is_a_divergence() {
        let secret = |line| {
            trace_with(&[(3, EventKind::MemAccess { line, op: MemOp::Load, tainted: false })])
        };
        let a = ObservableTrace::project(9, vec![], &secret(100));
        let b = ObservableTrace::project(9, vec![], &secret(142));
        let d = a.divergence(&b).unwrap();
        assert!(matches!(d, Divergence::Event { index: 0, .. }), "{}", d.describe());
    }

    #[test]
    fn dropped_events_make_comparison_unsound() {
        let mut t = EventTrace::with_capacity(1);
        t.record(ev(1, EventKind::Commit));
        t.record(ev(2, EventKind::Commit));
        let a = ObservableTrace::project(5, vec![], &t);
        assert!(matches!(a.divergence(&a.clone()), Some(Divergence::Dropped { .. })));
    }

    #[test]
    fn prefix_stream_reports_event_count() {
        let a = ObservableTrace::project(5, vec![], &trace_with(&[(1, EventKind::Commit)]));
        let b = ObservableTrace::project(
            5,
            vec![],
            &trace_with(&[(1, EventKind::Commit), (2, EventKind::Commit)]),
        );
        assert!(matches!(a.divergence(&b), Some(Divergence::EventCount { a: 1, b: 2 })));
    }
}
