//! The metrics registry: typed values keyed by hierarchical path.
//!
//! A [`MetricsSnapshot`] maps dotted paths (`core.squash.obl_fail`,
//! `mem.l1.hits`, `pipeline.occupancy.rob`) to typed [`Metric`] values.
//! Snapshots are built *after* a run from the simulator's stats structs
//! — the hot path never touches this module — and merged across runs in
//! canonical submission order, so the aggregate is identical no matter
//! how many workers produced the per-run snapshots. The backing map is
//! a `BTreeMap`, so iteration and JSON rendering are in stable
//! lexicographic path order.

use std::collections::BTreeMap;

use crate::hist::Histogram;

/// One typed metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// A monotonically accumulated count; merges by summation.
    Counter(u64),
    /// A bucketed distribution; merges bucket-wise (same bounds).
    Histogram(Histogram),
}

impl Metric {
    /// Renders the value as JSON (a bare integer or a histogram object).
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Metric::Counter(v) => v.to_string(),
            Metric::Histogram(h) => h.to_json(),
        }
    }
}

/// A point-in-time collection of metrics keyed by hierarchical path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, Metric>,
}

/// Asserts (debug builds only) that a metric path is well-formed:
/// non-empty dotted segments of `[a-z0-9_]`.
fn check_path(path: &str) {
    debug_assert!(
        !path.is_empty()
            && path
                .split('.')
                .all(|seg| !seg.is_empty()
                    && seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')),
        "malformed metric path: {path:?}"
    );
}

impl MetricsSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Adds `v` to the counter at `path`, registering it at zero first
    /// if absent.
    ///
    /// # Panics
    /// If `path` is already registered as a histogram.
    pub fn add(&mut self, path: &str, v: u64) {
        check_path(path);
        match self
            .entries
            .entry(path.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += v,
            Metric::Histogram(_) => panic!("metric {path:?} is a histogram, not a counter"),
        }
    }

    /// Merges histogram `h` into the histogram at `path`, registering a
    /// clone of `h` if absent.
    ///
    /// # Panics
    /// If `path` is already registered as a counter, or the existing
    /// histogram has different bucket bounds.
    pub fn add_histogram(&mut self, path: &str, h: &Histogram) {
        check_path(path);
        match self.entries.get_mut(path) {
            None => {
                self.entries.insert(path.to_string(), Metric::Histogram(h.clone()));
            }
            Some(Metric::Histogram(mine)) => mine.merge(h),
            Some(Metric::Counter(_)) => panic!("metric {path:?} is a counter, not a histogram"),
        }
    }

    /// Folds every metric of `other` into `self` (counters sum,
    /// histograms merge bucket-wise).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (path, m) in &other.entries {
            match m {
                Metric::Counter(v) => self.add(path, *v),
                Metric::Histogram(h) => self.add_histogram(path, h),
            }
        }
    }

    /// The counter at `path`, or `None` if absent or not a counter.
    #[must_use]
    pub fn counter(&self, path: &str) -> Option<u64> {
        match self.entries.get(path) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram at `path`, or `None` if absent or not a histogram.
    #[must_use]
    pub fn histogram(&self, path: &str) -> Option<&Histogram> {
        match self.entries.get(path) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The metric at `path`, if any.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&Metric> {
        self.entries.get(path)
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates metrics in stable lexicographic path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the snapshot as a pretty-printed JSON object, one dotted
    /// path per line, in stable lexicographic order. Paths never need
    /// escaping (enforced by a path check in debug builds), so the
    /// output is deterministic bytes for a deterministic snapshot.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (path, m) in &self.entries {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("  \"{}\": {}", path, m.to_json()));
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsSnapshot::new();
        m.add("core.committed", 10);
        m.add("core.committed", 5);
        assert_eq!(m.counter("core.committed"), Some(15));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn histograms_merge_in_place() {
        let mut m = MetricsSnapshot::new();
        let mut h = Histogram::occupancy(8);
        h.record(4);
        m.add_histogram("pipeline.occupancy.rob", &h);
        m.add_histogram("pipeline.occupancy.rob", &h);
        assert_eq!(m.histogram("pipeline.occupancy.rob").unwrap().count(), 2);
    }

    #[test]
    fn merge_order_does_not_matter() {
        let mk = |c: u64| {
            let mut m = MetricsSnapshot::new();
            m.add("a.x", c);
            let mut h = Histogram::occupancy(4);
            h.record(c % 5);
            m.add_histogram("a.h", &h);
            m
        };
        let parts: Vec<MetricsSnapshot> = (1..=4).map(mk).collect();
        let mut fwd = MetricsSnapshot::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = MetricsSnapshot::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.to_json(), rev.to_json());
    }

    #[test]
    #[should_panic(expected = "is a histogram")]
    fn kind_mismatch_panics() {
        let mut m = MetricsSnapshot::new();
        m.add_histogram("x", &Histogram::occupancy(2));
        m.add("x", 1);
    }

    #[test]
    fn json_is_sorted_and_balanced() {
        let mut m = MetricsSnapshot::new();
        m.add("b.second", 2);
        m.add("a.first", 1);
        let j = m.to_json();
        assert!(j.find("a.first").unwrap() < j.find("b.second").unwrap());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.ends_with("}\n"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "malformed metric path")]
    fn bad_paths_rejected_in_debug() {
        MetricsSnapshot::new().add("Core.Committed", 1);
    }
}
