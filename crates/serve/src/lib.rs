//! # sdo-serve — the cache-backed simulation service
//!
//! A persistent daemon owning a warm [`JobPool`] and (optionally) a
//! content-addressed [`ResultStore`], speaking the line-delimited JSON
//! protocol from `sdo_harness::proto` (DESIGN.md §13) over stdio or a
//! Unix socket. Every figure, campaign or ad-hoc run submitted to it is
//! first looked up by [`RunKey`]; repeated requests are cache hits that
//! return byte-identical [`RunResult`]s without executing a single
//! simulation.
//!
//! ## Batch contract
//!
//! A batch is a sequence of request lines terminated by a blank line.
//! The daemon writes exactly one reply line per request line, in request
//! order, then flushes. Back-pressure is explicit: run requests beyond
//! the configured queue bound are answered with `Busy` and must be
//! resubmitted in a later batch (the [`Runner`](sdo_harness::Runner)
//! client does this automatically).
//!
//! ## Fault containment
//!
//! Malformed lines, hangs, store failures and in-flight worker panics
//! all become typed `Error` replies — the daemon keeps serving. Panics
//! are caught per simulation with [`std::panic::catch_unwind`] and
//! rendered through [`sdo_harness::engine::panic_message`], the same
//! plumbing the in-process pool uses.

#![warn(missing_docs)]

use sdo_harness::engine::{panic_message, JobPool};
use sdo_harness::proto::{Reply, Request, BATCH_ERROR_ID};
use sdo_harness::store::{ResultStore, RunKey};
use sdo_harness::{RunRequest, RunResult, SimConfig, SimError, Simulator};
use sdo_verify::{CampaignConfig, Checker};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Content-addressed store directory (`None` = serve without
    /// memoization — every run simulates).
    pub store: Option<String>,
    /// Maximum run requests accepted per batch; the rest get `Busy`.
    pub queue: usize,
    /// Base machine configuration for requests with no override.
    pub base: SimConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { store: None, queue: 256, base: SimConfig::table_i() }
    }
}

/// The daemon: a warm pool, an optional store, and hit/miss counters.
#[derive(Debug)]
pub struct Server {
    sim: Simulator,
    store: Option<ResultStore>,
    queue: usize,
    pool: JobPool,
    hits: AtomicU64,
    misses: AtomicU64,
    shutdown: AtomicBool,
}

impl Server {
    /// Builds a daemon from `opts`, executing simulations on `pool`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] if the store directory cannot be
    /// opened.
    pub fn new(opts: ServeOptions, pool: JobPool) -> Result<Self, SimError> {
        let store = match &opts.store {
            Some(dir) => Some(ResultStore::open(dir.as_str())?),
            None => None,
        };
        Ok(Server {
            sim: Simulator::new(opts.base),
            store,
            queue: opts.queue.max(1),
            pool,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Requests served from the store since startup.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests actually simulated since startup.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Whether a `shutdown` request has been received.
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Serves one stream (stdio or an accepted socket connection) until
    /// EOF or a `shutdown` request. Between batches — while the daemon
    /// is otherwise idle — the store manifest is rewritten so
    /// `manifest.tsv` always reflects the entries on disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; protocol-level problems never
    /// surface here (they become typed `Error` replies).
    pub fn serve<R: BufRead, W: Write>(&self, mut reader: R, mut writer: W) -> std::io::Result<()> {
        loop {
            let mut lines = Vec::new();
            let mut eof = false;
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line)? == 0 {
                    eof = true;
                    break;
                }
                let trimmed = line.trim_end_matches(['\n', '\r']);
                if trimmed.is_empty() {
                    break;
                }
                lines.push(trimmed.to_string());
            }
            if !lines.is_empty() {
                for reply in self.handle_batch(&lines) {
                    writer.write_all(reply.render().as_bytes())?;
                    writer.write_all(b"\n")?;
                }
                writer.flush()?;
                if let Some(store) = &self.store {
                    // Idle point: the batch is answered, nothing is
                    // executing. Failures are non-fatal (the manifest is
                    // regenerable from the entries).
                    let _ = store.write_manifest();
                }
            }
            if eof || self.shutting_down() {
                return Ok(());
            }
        }
    }

    /// Binds (replacing any stale socket file) and serves connections
    /// one at a time until a `shutdown` request arrives.
    ///
    /// # Errors
    ///
    /// Returns bind/accept failures; per-connection I/O errors only end
    /// that connection.
    pub fn serve_socket(&self, path: &str) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        for conn in listener.incoming() {
            let stream = conn?;
            let reader = BufReader::new(stream.try_clone()?);
            if let Err(e) = self.serve(reader, &stream) {
                eprintln!("serve: connection error: {e}");
            }
            if self.shutting_down() {
                break;
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// Answers one batch: exactly one reply per line, in line order
    /// (`shutdown` lines excepted — they carry no id and get no reply).
    #[must_use]
    pub fn handle_batch(&self, lines: &[String]) -> Vec<Reply> {
        // Parse every line first so the queue bound counts actual run
        // requests, not malformed lines.
        let parsed: Vec<Result<Request, String>> =
            lines.iter().map(|l| Request::parse(l)).collect();

        // Queue bound: the first `queue` run requests are accepted, the
        // rest bounced with Busy (the client resubmits them).
        //
        // `replies` gets exactly one entry per line — Shutdown lines
        // (which get no reply) hold a None that the final flatten drops —
        // so `AcceptedRun.slot` can index by line number.
        let mut accepted = 0usize;
        let mut replies: Vec<Option<Reply>> = Vec::with_capacity(lines.len());
        let mut runs: Vec<AcceptedRun> = Vec::new();
        let mut grids: Vec<AcceptedGrid> = Vec::new();
        for (i, req) in parsed.into_iter().enumerate() {
            match req {
                Err(message) => {
                    replies.push(Some(Reply::Error { id: BATCH_ERROR_ID, message }));
                }
                Ok(Request::Run { id, request, no_cache }) => {
                    if id == BATCH_ERROR_ID {
                        replies.push(Some(Reply::Error {
                            id: BATCH_ERROR_ID,
                            message: format!(
                                "request id {id} is reserved for unattributable errors"
                            ),
                        }));
                    } else if let Err(message) = servable(&request) {
                        replies.push(Some(Reply::Error { id, message }));
                    } else if accepted >= self.queue {
                        replies.push(Some(Reply::Busy { id }));
                    } else {
                        accepted += 1;
                        runs.push(AcceptedRun { slot: i, id, request, no_cache, grid: None });
                        replies.push(None); // filled after execution
                    }
                }
                Ok(Request::Grid { id, request, configs, variants, no_cache }) => {
                    let points = configs.len() * variants.len();
                    if id == BATCH_ERROR_ID {
                        replies.push(Some(Reply::Error {
                            id: BATCH_ERROR_ID,
                            message: format!(
                                "request id {id} is reserved for unattributable errors"
                            ),
                        }));
                    } else if let Err(message) = servable(&request) {
                        replies.push(Some(Reply::Error { id, message }));
                    } else if points == 0 {
                        replies.push(Some(Reply::Error {
                            id,
                            message: "grid has no points (empty configs or variants)".to_string(),
                        }));
                    } else if accepted + points > self.queue {
                        // The whole grid counts against the queue bound;
                        // it is accepted or bounced atomically so a Busy
                        // grid never half-executes.
                        replies.push(Some(Reply::Busy { id }));
                    } else {
                        accepted += points;
                        // Expand config-major, variant-minor. Each point
                        // is the same RunRequest a client would send
                        // individually (config resolved into the
                        // request), so its RunKey — and therefore its
                        // store entry — is identical to the per-point
                        // equivalent.
                        for cfg in &configs {
                            for &v in &variants {
                                runs.push(AcceptedRun {
                                    slot: i,
                                    id,
                                    request: request.clone().variant(v).config(*cfg),
                                    no_cache,
                                    grid: Some(grids.len()),
                                });
                            }
                        }
                        grids.push(AcceptedGrid { slot: i, id, points });
                        replies.push(None); // filled after execution
                    }
                }
                Ok(Request::Stats { id }) => replies.push(Some(self.stats_reply(id))),
                Ok(Request::Campaign { id, seed, quick, fuzz }) => {
                    replies.push(Some(self.run_campaign(id, seed, quick, fuzz)));
                }
                Ok(Request::Shutdown) => {
                    self.shutdown.store(true, Ordering::Relaxed);
                    // No id, no reply — but the slot placeholder keeps
                    // line-number indexing sound for later run replies.
                    replies.push(None);
                }
            }
        }

        // Outcomes come back aligned with `runs`: plain runs fill their
        // reply slot directly, grid points accumulate per grid (the
        // expansion pushed them contiguously in point order, and the
        // alignment preserves that order).
        let mut acc: Vec<Vec<Result<(RunResult, bool), String>>> =
            grids.iter().map(|g| Vec::with_capacity(g.points)).collect();
        for (run, outcome) in runs.iter().zip(self.execute_runs(&runs)) {
            match run.grid {
                None => {
                    replies[run.slot] = Some(match outcome {
                        Ok((result, cached)) => Reply::Result { id: run.id, result, cached },
                        Err(message) => Reply::Error { id: run.id, message },
                    });
                }
                Some(g) => acc[g].push(outcome),
            }
        }
        for (grid, points) in grids.iter().zip(acc) {
            let mut results = Vec::with_capacity(points.len());
            let mut failed = None;
            for point in points {
                match point {
                    Ok(pair) => results.push(pair),
                    Err(message) => {
                        // First failing point wins; a grid is all-or-
                        // nothing so the client can fall back cleanly.
                        failed = Some(message);
                        break;
                    }
                }
            }
            replies[grid.slot] = Some(match failed {
                Some(message) => Reply::Error { id: grid.id, message },
                None => Reply::Grid { id: grid.id, results },
            });
        }
        replies.into_iter().flatten().collect()
    }

    /// Executes the accepted run requests of one batch: store lookups
    /// first, then the remainder fanned out on the warm pool (each
    /// simulation individually panic-guarded), then store writes.
    /// Returns one result-or-error per run, aligned with `runs`.
    fn execute_runs(&self, runs: &[AcceptedRun]) -> Vec<Result<(RunResult, bool), String>> {
        let base = *self.sim.config();
        let keys: Vec<Option<RunKey>> = runs
            .iter()
            .map(|run| cacheable(&run.request, base).then(|| RunKey::of(&run.request, base)))
            .collect();

        let mut out: Vec<Option<Result<(RunResult, bool), String>>> = vec![None; runs.len()];
        let mut todo: Vec<usize> = Vec::new(); // indices into `runs`
        for (j, run) in runs.iter().enumerate() {
            match (&self.store, &keys[j]) {
                (Some(store), Some(key)) if !run.no_cache => match store.load(key) {
                    Ok(Some(result)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        out[j] = Some(Ok((result, true)));
                    }
                    Ok(None) => todo.push(j),
                    Err(e) => out[j] = Some(Err(e.to_string())),
                },
                _ => todo.push(j),
            }
        }

        // Coalesce in-flight duplicates: requests with the same RunKey
        // in one batch simulate once — the representative runs (and
        // saves), the duplicates clone its result and count as hits.
        // `--no-cache` requests opt out and simulate individually, and
        // uncacheable requests (no key) are never coalesced.
        let mut unique: Vec<usize> = Vec::new(); // indices into `runs`
        let mut assign: Vec<(usize, usize)> = Vec::new(); // (runs idx, unique pos)
        {
            let mut seen: Vec<(&RunKey, usize)> = Vec::new();
            for &j in &todo {
                if let (false, Some(key)) = (runs[j].no_cache, &keys[j]) {
                    if let Some(&(_, pos)) = seen.iter().find(|(k, _)| *k == key) {
                        assign.push((j, pos));
                        continue;
                    }
                    seen.push((key, unique.len()));
                }
                assign.push((j, unique.len()));
                unique.push(j);
            }
        }

        let fresh: Vec<Result<RunResult, String>> = self
            .pool
            .try_run(&unique, |_, &j| {
                Ok::<_, SimError>(self.run_guarded(&runs[j].request))
            })
            .expect("guarded closure never errs");
        let mut results: Vec<Result<(RunResult, bool), String>> =
            Vec::with_capacity(unique.len());
        for (&j, outcome) in unique.iter().zip(fresh) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let outcome = outcome.and_then(|result| {
                if let (Some(store), Some(key)) = (&self.store, &keys[j]) {
                    store.save(key, &result).map_err(|e| e.to_string())?;
                }
                Ok((result, false))
            });
            results.push(outcome);
        }
        for (j, pos) in assign {
            let outcome = if unique[pos] == j {
                results[pos].clone()
            } else {
                // Served from the in-flight representative, not the
                // simulator — a hit, and flagged `cached` like one.
                self.hits.fetch_add(1, Ordering::Relaxed);
                results[pos].clone().map(|(result, _)| (result, true))
            };
            out[j] = Some(outcome);
        }
        out.into_iter()
            .map(|o| o.expect("every accepted run resolves to exactly one outcome"))
            .collect()
    }

    /// One simulation with the panic boundary drawn *inside* the worker
    /// closure: a panicking run yields an `Err` here instead of
    /// unwinding across the pool and killing the daemon.
    fn run_guarded(&self, req: &RunRequest) -> Result<RunResult, String> {
        match catch_unwind(AssertUnwindSafe(|| self.sim.run(req))) {
            Ok(Ok(output)) => Ok(output.into_result()),
            Ok(Err(e)) => Err(e.to_string()),
            Err(payload) => Err(format!("worker panicked: {}", panic_message(&*payload))),
        }
    }

    fn stats_reply(&self, id: u64) -> Reply {
        let entries = match &self.store {
            Some(store) => match store.len() {
                Ok(n) => n,
                Err(e) => return Reply::Error { id, message: e.to_string() },
            },
            None => 0,
        };
        Reply::Stats { id, hits: self.hits(), misses: self.misses(), entries }
    }

    /// Runs a verification campaign on the daemon's warm pool. Campaign
    /// runs carry in-process observability and never touch the store.
    fn run_campaign(&self, id: u64, seed: u64, quick: bool, fuzz: u64) -> Reply {
        let cfg = CampaignConfig {
            seed,
            quick,
            fuzz_count: Some(fuzz as usize),
            variants: None,
        };
        let checker = Checker::with_config(*self.sim.config());
        let outcome =
            catch_unwind(AssertUnwindSafe(|| cfg.run(&checker, &self.pool)));
        match outcome {
            Ok(Ok(result)) => Reply::Campaign {
                id,
                passed: result.passed(),
                checks: result.outcomes.len() as u64,
                render: result.render(),
            },
            Ok(Err(e)) => Reply::Error { id, message: e.to_string() },
            Err(payload) => Reply::Error {
                id,
                message: format!("campaign panicked: {}", panic_message(&*payload)),
            },
        }
    }
}

/// Why a run request cannot be served, if it cannot: the protocol
/// carries exactly one result per request, so multi-core and
/// PC-recording runs (which need the full in-process `RunOutput`) are
/// rejected with a typed error rather than silently truncated.
fn servable(req: &RunRequest) -> Result<(), String> {
    if req.programs.len() != 1 {
        return Err(format!(
            "multi-core requests ({} programs) are not servable; run them in-process",
            req.programs.len()
        ));
    }
    if req.record {
        return Err("recording runs are not servable; run them in-process".to_string());
    }
    Ok(())
}

/// Whether a request's results may be stored: obs-carrying results
/// cannot be serialized (the probe stays in-process), so they simulate
/// every time.
fn cacheable(req: &RunRequest, base: SimConfig) -> bool {
    !req.effective_config(base).obs.enabled()
}

/// A run request admitted past the queue bound, with its reply slot in
/// the batch and its echoed id. Grid points carry the index of their
/// [`AcceptedGrid`] so outcomes accumulate into one `Grid` reply
/// instead of filling the slot directly.
#[derive(Debug)]
struct AcceptedRun {
    slot: usize,
    id: u64,
    request: RunRequest,
    no_cache: bool,
    grid: Option<usize>,
}

/// An accepted grid request: one reply slot collecting `points`
/// expanded runs.
#[derive(Debug)]
struct AcceptedGrid {
    slot: usize,
    id: u64,
    points: usize,
}
