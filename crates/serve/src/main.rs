//! `serve` — the cache-backed simulation daemon.
//!
//! With no flags the daemon speaks the protocol on stdin/stdout (one
//! process per client, handy for piping and tests); with `--socket
//! <path>` it listens on a Unix socket and serves connections on one
//! warm pool until a `shutdown` request. `--store <dir>` fronts the
//! content-addressed result store: repeated requests are cache hits
//! returning byte-identical results with zero simulations executed.
//! `--queue <N>` bounds how many run requests one batch may carry before
//! the daemon answers `Busy` (explicit back-pressure; clients resubmit).

use sdo_harness::cli::{BinSpec, CommonArgs, CsvSupport};
use sdo_harness::SimConfig;
use sdo_serve::{ServeOptions, Server};

const SPEC: BinSpec = BinSpec {
    name: "serve",
    about: "cache-backed simulation service: a warm-pool daemon fronting the \
            content-addressed result store over stdio or a Unix socket",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: false,
    seed: false,
    no_skip: false,
    // The daemon *is* the server; the uniform client flags would be
    // circular here, so it declares its own --store/--socket/--queue.
    client: false,
    extra_options: &[
        ("--socket <path>", "listen on a Unix socket instead of stdio"),
        ("--store <dir>", "serve (and fill) the content-addressed result store at <dir>"),
        ("--queue <N>", "max run requests per batch before Busy replies (default 256)"),
    ],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    let mut opts = ServeOptions { base: SimConfig::table_i(), ..ServeOptions::default() };
    let mut socket: Option<String> = None;

    let mut it = args.rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map_or_else(|| SPEC.usage_error(&format!("{flag} requires a value")), String::clone)
        };
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")),
            "--store" => opts.store = Some(value("--store")),
            "--queue" => opts.queue = parse_queue(&value("--queue")),
            other => {
                if let Some(v) = other.strip_prefix("--socket=") {
                    socket = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--store=") {
                    opts.store = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--queue=") {
                    opts.queue = parse_queue(v);
                } else {
                    SPEC.usage_error(&format!("unexpected argument '{other}'"));
                }
            }
        }
    }

    let server = Server::new(opts.clone(), args.pool)
        .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()));
    let outcome = match &socket {
        Some(path) => {
            eprintln!(
                "serve: listening on {path} ({}, queue {})",
                opts.store.as_deref().map_or_else(
                    || "no store".to_string(),
                    |dir| format!("store {dir}")
                ),
                opts.queue,
            );
            server.serve_socket(path)
        }
        None => server.serve(std::io::stdin().lock(), std::io::stdout().lock()),
    };
    if let Err(e) = outcome {
        SPEC.runtime_error(&format!("transport failed: {e}"));
    }
    eprintln!(
        "serve: done ({} hits, {} misses)",
        server.hits(),
        server.misses()
    );
}

fn parse_queue(v: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => SPEC.usage_error(&format!("--queue expects a positive integer, got '{v}'")),
    }
}
