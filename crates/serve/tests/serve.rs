//! End-to-end tests for the daemon: the batch contract (one reply per
//! request, in order), cache hits with byte-identical results, explicit
//! `Busy` back-pressure, typed errors for malformed/unservable/hanging
//! requests with the daemon surviving all of them, and the socket
//! transport driven by the `Runner` client.

use sdo_harness::proto::{Reply, Request, BATCH_ERROR_ID};
use sdo_harness::{JobPool, Runner, RunRequest, SimConfig, Variant};
use sdo_serve::{ServeOptions, Server};
use sdo_workloads::kernels::l1_resident;
use std::io::Cursor;

fn temp_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("sdo-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

fn opts(store: Option<String>, queue: usize) -> ServeOptions {
    ServeOptions { store, queue, base: SimConfig::tiny() }
}

/// Feeds `batches` (already newline-framed) through a stdio server and
/// returns the parsed replies.
fn drive(server: &Server, input: &str) -> Vec<Reply> {
    let mut out = Vec::new();
    server.serve(Cursor::new(input.to_string()), &mut out).expect("stdio serve succeeds");
    String::from_utf8(out)
        .expect("replies are UTF-8")
        .lines()
        .map(|l| Reply::parse(l).expect("every reply line parses"))
        .collect()
}

fn batch(msgs: &[Request]) -> String {
    let mut s = String::new();
    for m in msgs {
        s.push_str(&m.render());
        s.push('\n');
    }
    s.push('\n');
    s
}

#[test]
fn run_requests_hit_the_store_on_the_second_pass() {
    let dir = temp_dir("hits");
    let server = Server::new(opts(Some(dir.clone()), 64), JobPool::new(2)).unwrap();
    let prog = l1_resident(120, 1);
    let reqs: Vec<Request> = Variant::ALL
        .iter()
        .enumerate()
        .map(|(i, &v)| Request::Run {
            id: i as u64,
            request: RunRequest::program(&prog).variant(v),
            no_cache: false,
        })
        .collect();

    let cold = drive(&server, &batch(&reqs));
    assert_eq!(cold.len(), reqs.len(), "one reply per request");
    for (i, reply) in cold.iter().enumerate() {
        let Reply::Result { id, cached, .. } = reply else {
            panic!("expected a result, got {reply:?}");
        };
        assert_eq!(*id, i as u64, "replies in request order");
        assert!(!cached, "first pass simulates");
    }
    assert_eq!(server.misses(), reqs.len() as u64);

    let warm = drive(&server, &batch(&reqs));
    for (c, w) in cold.iter().zip(&warm) {
        let (Reply::Result { result: rc, .. }, Reply::Result { result: rw, cached, .. }) = (c, w)
        else {
            panic!("expected results");
        };
        assert!(cached, "second pass is served from the store");
        assert_eq!(rw, rc, "cached result is byte-identical");
    }
    assert_eq!(server.hits(), reqs.len() as u64, "second pass: 100% hits");
    assert_eq!(server.misses(), reqs.len() as u64, "second pass executed nothing new");

    // The idle-point manifest rewrite happened and covers every entry.
    let manifest = std::fs::read_to_string(format!("{dir}/manifest.tsv")).unwrap();
    assert_eq!(manifest.lines().count(), reqs.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn identical_in_flight_requests_simulate_once() {
    // In-flight coalescing: N identical requests in one batch must cost
    // exactly one simulation — the duplicates clone the representative's
    // result (flagged `cached`, counted as hits), even with no store.
    let server = Server::new(opts(None, 64), JobPool::new(2)).unwrap();
    let prog = l1_resident(120, 1);
    let reqs: Vec<Request> = (0..6)
        .map(|i| Request::Run { id: i, request: RunRequest::program(&prog), no_cache: false })
        .collect();
    let replies = drive(&server, &batch(&reqs));
    assert_eq!(replies.len(), 6, "one reply per request");
    let Reply::Result { id: 0, cached: false, result: first } = &replies[0] else {
        panic!("representative simulates, got {:?}", replies[0]);
    };
    for (i, reply) in replies.iter().enumerate().skip(1) {
        let Reply::Result { id, cached, result } = reply else {
            panic!("expected a result, got {reply:?}");
        };
        assert_eq!(*id, i as u64, "replies in request order");
        assert!(cached, "duplicate is served from the in-flight representative");
        assert_eq!(result, first, "coalesced result is byte-identical");
    }
    assert_eq!(server.misses(), 1, "6 identical requests => 1 simulation");
    assert_eq!(server.hits(), 5, "the 5 duplicates count as hits");

    // Distinct keys in the same batch still simulate individually...
    let mut mixed: Vec<Request> = Vec::new();
    for (i, &v) in Variant::ALL.iter().enumerate() {
        for k in 0..2 {
            mixed.push(Request::Run {
                id: 100 + 2 * i as u64 + k,
                request: RunRequest::program(&prog).variant(v),
                no_cache: false,
            });
        }
    }
    let replies = drive(&server, &batch(&mixed));
    assert_eq!(replies.len(), mixed.len());
    assert_eq!(
        server.misses(),
        1 + Variant::ALL.len() as u64,
        "one simulation per distinct variant"
    );

    // ...and `no_cache` opts a request out of coalescing entirely.
    let fresh: Vec<Request> = (0..3)
        .map(|i| Request::Run { id: 200 + i, request: RunRequest::program(&prog), no_cache: true })
        .collect();
    let before = server.misses();
    drive(&server, &batch(&fresh));
    assert_eq!(server.misses(), before + 3, "no_cache duplicates each simulate");
}

#[test]
fn grid_requests_expand_server_side_and_share_the_store() {
    let dir = temp_dir("grid");
    let server = Server::new(opts(Some(dir.clone()), 64), JobPool::new(2)).unwrap();
    let prog = l1_resident(120, 1);
    let mut wide = SimConfig::tiny();
    wide.core.rob_entries *= 2;
    let configs = vec![SimConfig::tiny(), wide];
    let variants = vec![Variant::Unsafe, Variant::SttLd];

    // One grid line; one Grid reply carrying configs × variants results
    // in config-major, variant-minor order — every point simulated.
    let grid = Request::Grid {
        id: 0,
        request: RunRequest::program(&prog),
        configs: configs.clone(),
        variants: variants.clone(),
        no_cache: false,
    };
    let replies = drive(&server, &batch(&[grid]));
    assert_eq!(replies.len(), 1, "a grid is one request, one reply");
    let Reply::Grid { id: 0, results } = &replies[0] else {
        panic!("expected a grid reply, got {:?}", replies[0]);
    };
    assert_eq!(results.len(), configs.len() * variants.len());
    assert!(results.iter().all(|(_, cached)| !cached), "cold grid simulates every point");
    assert_eq!(server.misses(), results.len() as u64);

    // Each expanded point carries the RunKey of the equivalent
    // individual request, so per-point runs are now pure store hits.
    let mut points: Vec<Request> = Vec::new();
    for &cfg in &configs {
        for &v in &variants {
            points.push(Request::Run {
                id: points.len() as u64,
                request: RunRequest::program(&prog).variant(v).config(cfg),
                no_cache: false,
            });
        }
    }
    let replies = drive(&server, &batch(&points));
    for ((grid_result, _), reply) in results.iter().zip(&replies) {
        let Reply::Result { cached: true, result, .. } = reply else {
            panic!("per-point rerun must hit the grid's store entry, got {reply:?}");
        };
        assert_eq!(result, grid_result, "store round-trip is byte-identical");
    }
    assert_eq!(server.hits(), points.len() as u64);

    // A pointless grid is a typed error, not a zero-length reply.
    let empty = Request::Grid {
        id: 9,
        request: RunRequest::program(&prog),
        configs: vec![],
        variants: variants.clone(),
        no_cache: false,
    };
    let replies = drive(&server, &batch(&[empty]));
    let Reply::Error { id: 9, message } = &replies[0] else {
        panic!("empty grid must be refused, got {:?}", replies[0]);
    };
    assert!(message.contains("no points"), "got '{message}'");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn grid_wider_than_the_queue_is_bounced_whole() {
    // queue = 3 but the grid expands to 4 points: accepted atomically or
    // not at all, so the client can fall back to per-point submission.
    let server = Server::new(opts(None, 3), JobPool::serial()).unwrap();
    let prog = l1_resident(60, 1);
    let grid = Request::Grid {
        id: 5,
        request: RunRequest::program(&prog),
        configs: vec![SimConfig::tiny(), SimConfig::tiny()],
        variants: vec![Variant::Unsafe, Variant::SttLd],
        no_cache: false,
    };
    let replies = drive(&server, &batch(&[grid]));
    assert!(matches!(replies[0], Reply::Busy { id: 5 }), "got {:?}", replies[0]);
    assert_eq!(server.misses(), 0, "a bounced grid executes nothing");
}

#[test]
fn queue_bound_bounces_the_overflow_with_busy() {
    let server = Server::new(opts(None, 2), JobPool::serial()).unwrap();
    let prog = l1_resident(60, 1);
    let reqs: Vec<Request> = (0..4)
        .map(|i| Request::Run {
            id: i,
            request: RunRequest::program(&prog),
            no_cache: false,
        })
        .collect();
    let replies = drive(&server, &batch(&reqs));
    assert_eq!(replies.len(), 4);
    assert!(matches!(replies[0], Reply::Result { id: 0, .. }));
    assert!(matches!(replies[1], Reply::Result { id: 1, .. }));
    assert!(matches!(replies[2], Reply::Busy { id: 2 }));
    assert!(matches!(replies[3], Reply::Busy { id: 3 }));
}

#[test]
fn faults_become_typed_errors_and_the_daemon_keeps_serving() {
    let server = Server::new(opts(None, 64), JobPool::serial()).unwrap();
    let prog = l1_resident(200, 1);

    // Batch 1: a malformed line, an unservable request, and a hang.
    let mut hang_cfg = SimConfig::tiny();
    hang_cfg.max_cycles = 10;
    let multi = Request::Run {
        id: 7,
        request: RunRequest::multi(&[prog.clone(), prog.clone()]),
        no_cache: false,
    };
    let hang = Request::Run {
        id: 8,
        request: RunRequest::program(&prog).config(hang_cfg),
        no_cache: false,
    };
    let input = format!("{{\"op\":\"launch_missiles\"}}\n{}\n{}\n\n", multi.render(), hang.render());
    let replies = drive(&server, &input);
    assert_eq!(replies.len(), 3, "every line gets a reply, even the broken ones");
    let Reply::Error { id: BATCH_ERROR_ID, message } = &replies[0] else {
        panic!("malformed line must be a typed error, got {:?}", replies[0]);
    };
    assert!(message.contains("unknown op"), "got '{message}'");
    let Reply::Error { id: 7, message } = &replies[1] else {
        panic!("multi-core request must be rejected, got {:?}", replies[1]);
    };
    assert!(message.contains("not servable"), "got '{message}'");
    let Reply::Error { id: 8, message } = &replies[2] else {
        panic!("hang must be a typed error, got {:?}", replies[2]);
    };
    assert!(message.contains("did not halt"), "got '{message}'");

    // Batch 2: a hostile deeply-nested line must be a typed error too —
    // not a parser recursion blowing the daemon's stack.
    let hostile = format!("{}\n\n", "[".repeat(100_000));
    let replies = drive(&server, &hostile);
    let Reply::Error { id: BATCH_ERROR_ID, message } = &replies[0] else {
        panic!("deep nesting must be a typed error, got {:?}", replies[0]);
    };
    assert!(message.contains("nesting deeper"), "got '{message}'");

    // Batch 3: a run claiming the reserved error id is refused.
    let reserved =
        Request::Run { id: BATCH_ERROR_ID, request: RunRequest::program(&prog), no_cache: false };
    let replies = drive(&server, &batch(&[reserved]));
    let Reply::Error { id: BATCH_ERROR_ID, message } = &replies[0] else {
        panic!("reserved id must be refused, got {:?}", replies[0]);
    };
    assert!(message.contains("reserved"), "got '{message}'");

    // Batch 4: the daemon is still alive and well.
    let ok = Request::Run { id: 9, request: RunRequest::program(&prog), no_cache: false };
    let replies = drive(&server, &batch(&[ok]));
    assert!(matches!(replies[0], Reply::Result { id: 9, cached: false, .. }));
}

#[test]
fn shutdown_line_before_run_lines_keeps_reply_slots_aligned() {
    // Regression: shutdown lines get no reply, but they must still
    // occupy a slot internally — a batch of [shutdown, run, run] once
    // made the run replies index out of bounds (daemon panic) instead
    // of answering both runs.
    let server = Server::new(opts(None, 64), JobPool::serial()).unwrap();
    let prog = l1_resident(60, 1);
    let msgs = [
        Request::Shutdown,
        Request::Run { id: 0, request: RunRequest::program(&prog), no_cache: false },
        Request::Run { id: 1, request: RunRequest::program(&prog), no_cache: false },
    ];
    let replies = drive(&server, &batch(&msgs));
    assert_eq!(replies.len(), 2, "both runs answered, shutdown silent");
    assert!(matches!(replies[0], Reply::Result { id: 0, .. }));
    assert!(matches!(replies[1], Reply::Result { id: 1, .. }));
    assert!(server.shutting_down());
}

#[test]
fn stats_and_campaign_requests_are_answered_inline() {
    // The campaign checker is calibrated for the paper's Table I machine,
    // so this server runs the full-size base config.
    let server = Server::new(
        ServeOptions { store: Some(temp_dir("stats")), queue: 64, base: SimConfig::table_i() },
        JobPool::new(2),
    )
    .unwrap();
    let prog = l1_resident(100, 1);
    let run = Request::Run { id: 0, request: RunRequest::program(&prog), no_cache: false };
    drive(&server, &batch(&[run]));

    let replies = drive(&server, &batch(&[Request::Stats { id: 1 }]));
    let Reply::Stats { id: 1, hits, misses, entries } = replies[0] else {
        panic!("expected stats, got {:?}", replies[0]);
    };
    assert_eq!((hits, misses, entries), (0, 1, 1));

    // A fuzz-free quick campaign on the daemon's warm pool.
    let campaign = Request::Campaign { id: 2, seed: 7, quick: true, fuzz: 0 };
    let replies = drive(&server, &batch(&[campaign]));
    let Reply::Campaign { id: 2, passed, checks, render } = &replies[0] else {
        panic!("expected a campaign verdict, got {:?}", replies[0]);
    };
    assert!(passed, "quick campaign must pass:\n{render}");
    assert!(*checks > 0);
    assert!(render.contains("PASS"));
}

#[test]
fn shutdown_ends_the_stream_without_a_reply() {
    let server = Server::new(opts(None, 64), JobPool::serial()).unwrap();
    let replies = drive(&server, &format!("{}\n\n", Request::Shutdown.render()));
    assert!(replies.is_empty(), "shutdown carries no id and gets no reply");
    assert!(server.shutting_down());
}

#[test]
fn socket_transport_serves_the_runner_client() {
    let dir = temp_dir("socket");
    let sock = format!("{}/sock", temp_dir("socket-path"));
    std::fs::create_dir_all(std::path::Path::new(&sock).parent().unwrap()).unwrap();
    let server = Server::new(opts(Some(dir.clone()), 3), JobPool::new(2)).unwrap();

    std::thread::scope(|scope| {
        let server = &server;
        let sock_path = sock.clone();
        scope.spawn(move || server.serve_socket(&sock_path).expect("socket serve succeeds"));
        // Wait for the socket to appear.
        for _ in 0..200 {
            if std::path::Path::new(&sock).exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        let prog = l1_resident(120, 1);
        let reqs: Vec<RunRequest> =
            Variant::ALL.iter().map(|&v| RunRequest::program(&prog).variant(v)).collect();

        // Batch larger than the daemon queue (3): the client must ride
        // the Busy/resubmit loop transparently.
        let client = Runner::server(SimConfig::tiny(), &sock);
        let remote = client.run_batch(&reqs, &JobPool::serial()).unwrap();
        assert_eq!(client.misses(), reqs.len() as u64);

        let local = Runner::local(SimConfig::tiny());
        let reference = local.run_batch(&reqs, &JobPool::serial()).unwrap();
        assert_eq!(remote, reference, "served results match in-process simulation");

        let warm_client = Runner::server(SimConfig::tiny(), &sock);
        let warm = warm_client.run_batch(&reqs, &JobPool::serial()).unwrap();
        assert_eq!(warm, reference);
        assert_eq!(warm_client.hits(), reqs.len() as u64);
        assert_eq!(warm_client.misses(), 0, "warm pass executed zero simulations");
        assert_eq!(
            warm_client.cache_report().unwrap(),
            format!("cache: {} hits, 0 misses (100.0% cached)", reqs.len())
        );

        // Regression: a client whose base config diverges from the
        // daemon's (the `--no-skip --server` case, plus a latency bump
        // that visibly changes cycle counts) must have ITS config
        // honored — the runner resolves the effective config
        // client-side before sending, so the daemon's own base never
        // silently wins.
        let mut div_cfg = SimConfig::tiny();
        div_cfg.fast_forward = false;
        div_cfg.core.lat.int_alu += 2;
        let div_client = Runner::server(div_cfg, &sock);
        let remote_div = div_client.run_batch(&reqs, &JobPool::serial()).unwrap();
        let local_div = Runner::local(div_cfg).run_batch(&reqs, &JobPool::serial()).unwrap();
        assert_eq!(remote_div, local_div, "client base config must be honored");
        assert_ne!(
            remote_div, reference,
            "divergent client config produced the daemon-base results — the \
             client's config was silently ignored"
        );
        assert!(
            remote_div.iter().all(|r| r.skipped_cycles == 0),
            "fast-forward was disabled by the client, yet the daemon skipped cycles"
        );

        // Shut the daemon down over the wire.
        use std::io::Write;
        let mut stream = std::os::unix::net::UnixStream::connect(&sock).unwrap();
        stream.write_all(format!("{}\n\n", Request::Shutdown.render()).as_bytes()).unwrap();
    });
    assert!(!std::path::Path::new(&sock).exists(), "socket file is removed on shutdown");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sensitivity_sweep_through_the_daemon_is_byte_identical() {
    use sdo_harness::experiments::sensitivity_for_with_metrics;
    use sdo_workloads::Workload;

    let dir = temp_dir("grid-sweep");
    let sock = format!("{}/sock", temp_dir("grid-sweep-path"));
    std::fs::create_dir_all(std::path::Path::new(&sock).parent().unwrap()).unwrap();
    // Daemon base deliberately differs from the client's: the grid's
    // points carry explicit configs built from the CLIENT base, so the
    // daemon base must never leak into the sweep.
    let server =
        Server::new(ServeOptions { store: Some(dir.clone()), queue: 64, base: SimConfig::table_i() }, JobPool::new(2))
            .unwrap();

    std::thread::scope(|scope| {
        let server = &server;
        let sock_path = sock.clone();
        scope.spawn(move || server.serve_socket(&sock_path).expect("socket serve succeeds"));
        for _ in 0..200 {
            if std::path::Path::new(&sock).exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        let kernel = Workload::new("l1_resident", l1_resident(120, 1));
        let local = Runner::local(SimConfig::tiny());
        let (reference, ref_metrics) =
            sensitivity_for_with_metrics(&local, &kernel, &JobPool::serial()).unwrap();

        // The whole sweep rides ONE grid request line: every point
        // simulates daemon-side, and the rendered report is
        // byte-identical to the in-process one.
        let client = Runner::server(SimConfig::tiny(), &sock);
        let (remote, remote_metrics) =
            sensitivity_for_with_metrics(&client, &kernel, &JobPool::serial()).unwrap();
        assert_eq!(remote, reference, "daemon-served sensitivity report diverged");
        assert_eq!(remote_metrics.to_json(), ref_metrics.to_json());
        let points = client.hits() + client.misses();
        assert_eq!(server.misses(), points, "cold sweep simulated every grid point");
        assert!(points > 0);

        // A warm rerun is a pure cache pass: zero daemon simulations,
        // still byte-identical.
        let warm = Runner::server(SimConfig::tiny(), &sock);
        let (rewarm, _) = sensitivity_for_with_metrics(&warm, &kernel, &JobPool::serial()).unwrap();
        assert_eq!(rewarm, reference);
        assert_eq!(warm.misses(), 0, "warm sweep executed zero simulations");
        assert_eq!(warm.hits(), points);

        use std::io::Write;
        let mut stream = std::os::unix::net::UnixStream::connect(&sock).unwrap();
        stream.write_all(format!("{}\n\n", Request::Shutdown.render()).as_bytes()).unwrap();
    });
    std::fs::remove_dir_all(&dir).unwrap();
}
