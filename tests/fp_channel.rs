//! The FP-timing covert channel (paper Section I-A / NetSpectre): a
//! doomed speculative multiply on a subnormal secret ties up an FP unit
//! and delays the victim's own FP work — **total runtime** leaks the
//! secret without touching a single cache line.
//!
//! Expected outcomes (exactly the paper's Table II story):
//!
//! * `Unsafe` — leaks (runtime depends on the secret);
//! * `STT{ld}` — still leaks: loads are protected, FP transmitters are
//!   not, which is precisely why the paper evaluates `STT{ld+fp}`;
//! * `STT{ld+fp}` — blocked (tainted fmul delayed until squashed);
//! * SDO variants — blocked (predict-normal DO variant: fixed latency
//!   and fixed occupancy regardless of operands).

use sdo_sim::harness::{RunRequest, SimConfig, Simulator, Variant};
use sdo_sim::uarch::AttackModel;
use sdo_sim::workloads::spectre_fp_victim;

fn runtime(variant: Variant, secret: u8) -> u64 {
    let sim = Simulator::new(SimConfig::table_i());
    sim.run(
        &RunRequest::program(&spectre_fp_victim(secret))
            .variant(variant)
            .attack(AttackModel::Spectre),
    )
    .expect("victim runs")
    .into_result()
    .cycles
}

#[test]
fn fp_timing_leaks_on_unsafe() {
    let zero = runtime(Variant::Unsafe, 0);
    let secret = runtime(Variant::Unsafe, 42);
    assert_ne!(zero, secret, "subnormal slow path must be visible in total runtime");
}

#[test]
fn fp_timing_still_leaks_under_stt_ld() {
    // STT{ld} protects loads only: the tainted fmul executes with
    // operand-dependent latency — the motivation for STT{ld+fp}.
    let zero = runtime(Variant::SttLd, 0);
    let secret = runtime(Variant::SttLd, 42);
    assert_ne!(zero, secret, "STT{{ld}} does not close the FP channel");
}

#[test]
fn fp_timing_blocked_by_stt_ld_fp_and_all_sdo_variants() {
    for variant in [
        Variant::SttLdFp,
        Variant::StaticL1,
        Variant::StaticL2,
        Variant::StaticL3,
        Variant::Hybrid,
        Variant::Perfect,
    ] {
        let mut cycles = Vec::new();
        for secret in [0u8, 1, 42, 255] {
            cycles.push(runtime(variant, secret));
        }
        assert!(
            cycles.windows(2).all(|w| w[0] == w[1]),
            "{variant}: runtime must be secret-independent, got {cycles:?}"
        );
    }
}
