//! Multi-core integration: two out-of-order cores sharing the memory
//! hierarchy, exercising the MESI directory, invalidation delivery and
//! the deferred consistency-squash path (Section V-C1).

use sdo_sim::harness::{SimConfig, Variant};
use sdo_sim::isa::{Assembler, Program, Reg};
use sdo_sim::mem::MemorySystem;
use sdo_sim::uarch::{AttackModel, Core};

fn writer_program(region: u64, iters: i64) -> Program {
    let mut asm = Assembler::named("writer");
    let r = Reg::new;
    let (base, i, v) = (r(1), r(10), r(2));
    asm.li(base, region as i64);
    asm.li(i, iters);
    let top = asm.here();
    // Rotate writes over 8 lines.
    asm.andi(r(3), i, 0x7);
    asm.slli(r(3), r(3), 6);
    asm.add(r(3), r(3), base);
    asm.addi(v, v, 3);
    asm.st(v, r(3), 0);
    asm.addi(i, i, -1);
    asm.bne(i, Reg::ZERO, top);
    asm.halt();
    asm.finish().expect("writer assembles")
}

fn reader_program(region: u64, iters: i64) -> Program {
    let mut asm = Assembler::named("reader");
    let r = Reg::new;
    let (base, i, acc) = (r(1), r(10), r(7));
    asm.li(base, region as i64);
    asm.li(i, iters);
    let top = asm.here();
    asm.andi(r(3), i, 0x7);
    asm.slli(r(3), r(3), 6);
    asm.add(r(3), r(3), base);
    asm.ld(r(4), r(3), 0); // races with the writer's stores
    let skip = asm.label();
    asm.blt(r(4), Reg::ZERO, skip); // never taken (values non-negative)
    asm.ld(r(5), base, 0x100); // dependent load in the shadow
    asm.add(acc, acc, r(4));
    asm.bind(skip);
    asm.addi(i, i, -1);
    asm.bne(i, Reg::ZERO, top);
    asm.halt();
    asm.finish().expect("reader assembles")
}

fn run_pair(variant: Variant, attack: AttackModel) -> (Core, Core, MemorySystem) {
    let cfg = SimConfig::table_i();
    let region = 0x9000u64;
    let writer = writer_program(region, 400);
    let reader = reader_program(region, 400);
    let mut mem = MemorySystem::new(cfg.mem, 2);
    mem.load_image(writer.data());
    let sec = variant.security(attack);
    let mut c0 = Core::new(0, cfg.core, sec, writer);
    let mut c1 = Core::new(1, cfg.core, sec, reader);
    for _ in 0..2_000_000u64 {
        if c0.halted() && c1.halted() {
            break;
        }
        c0.tick(&mut mem);
        c1.tick(&mut mem);
    }
    (c0, c1, mem)
}

#[test]
fn two_cores_share_memory_and_finish() {
    for variant in [Variant::Unsafe, Variant::SttLd, Variant::Hybrid] {
        let (c0, c1, mem) = run_pair(variant, AttackModel::Spectre);
        assert!(c0.halted(), "writer must halt under {variant}");
        assert!(c1.halted(), "reader must halt under {variant}");
        // The writer's last value landed in memory.
        assert!(mem.peek_word(0x9000 + 0x40) > 0);
        assert!(c0.stats().committed_stores >= 400);
        assert!(c1.stats().committed_loads >= 400);
    }
}

#[test]
fn coherence_traffic_flows_between_cores() {
    let (_c0, _c1, mem) = run_pair(Variant::Unsafe, AttackModel::Spectre);
    let stats = mem.stats();
    assert!(
        stats.invalidations_sent > 0,
        "writer upgrades must invalidate the reader's copies"
    );
    assert!(stats.remote_hits > 0, "reader must hit dirty lines in the writer's cache");
}

#[test]
fn consistency_squashes_are_possible_and_recovered() {
    // With racing stores and speculative loads the reader may observe
    // invalidation-driven consistency squashes; whatever happens, both
    // cores must converge and the reader's accumulator must be a sum of
    // values the writer actually produced (divisible by 3, since every
    // written value is).
    let (c0, c1, _mem) = run_pair(Variant::Hybrid, AttackModel::Futuristic);
    assert!(c0.halted() && c1.halted());
    let acc = c1.arch_int()[7];
    assert_eq!(acc % 3, 0, "reader accumulated a torn/stale value: {acc}");
}
