//! The extra (non-suite) kernels — BST search and CSR SpMV — must be
//! functionally transparent under protection and actually exercise the
//! Obl-Ld machinery.

use sdo_sim::harness::{RunRequest, RunResult, SimConfig, Simulator, Variant};
use sdo_sim::isa::Interpreter;
use sdo_sim::mem::CacheLevel;
use sdo_sim::uarch::AttackModel;
use sdo_sim::workloads::kernels::{bst_search, sparse_matvec, Workload};

/// One simulation through the single `RunRequest` entry point.
fn run(sim: &Simulator, w: &Workload, variant: Variant, attack: AttackModel) -> RunResult {
    sim.run(&RunRequest::workload(w).variant(variant).attack(attack)).unwrap().into_result()
}

#[test]
fn extra_kernels_match_golden_under_all_variants() {
    let kernels =
        [Workload::new("bst", bst_search(127, 120, 1)), Workload::new("spmv", sparse_matvec(48, 4, 2))];
    let sim = Simulator::new(SimConfig::table_i());
    for w in &kernels {
        let mut golden = Interpreter::new(w.program());
        golden.run(10_000_000).expect("golden halts");
        for variant in Variant::ALL {
            for attack in AttackModel::ALL {
                let r = run(&sim, w, variant, attack);
                assert_eq!(
                    r.core.committed,
                    golden.executed(),
                    "{} commits differ under {variant}/{attack}",
                    w.name()
                );
            }
        }
    }
}

#[test]
fn bst_walk_is_transmit_heavy() {
    // Warm the tree (SimPoint-style) so the location predictor sees
    // cache levels rather than cold-DRAM first touches, which would send
    // the loads down the delay path instead of the Obl-Ld path.
    let w = Workload::new("bst", bst_search(511, 300, 3)).warmed(0xC0_0000, 511 * 64, CacheLevel::L2);
    let sim = Simulator::new(SimConfig::table_i());
    let stt = run(&sim, &w, Variant::SttLd, AttackModel::Spectre);
    let sdo = run(&sim, &w, Variant::Hybrid, AttackModel::Spectre);
    // The tree walk is chains of tainted child-pointer loads: STT delays
    // or SDO issues Obl-Lds — one of the two mechanisms must fire a lot.
    assert!(
        stt.core.delayed_loads > 100,
        "BST child loads must be delayed under STT, got {}",
        stt.core.delayed_loads
    );
    assert!(
        sdo.core.obl.issued > 100,
        "BST child loads must go oblivious under SDO, got {}",
        sdo.core.obl.issued
    );
}

#[test]
fn spmv_exercises_fp_transmitters() {
    let w = Workload::new("spmv", sparse_matvec(64, 8, 4))
        .warmed(0xE0_0000, 64 * 8, CacheLevel::L2);
    let sim = Simulator::new(SimConfig::table_i());
    let sdo = run(&sim, &w, Variant::Hybrid, AttackModel::Futuristic);
    assert!(sdo.core.obl.issued > 50, "gathers must go oblivious: {}", sdo.core.obl.issued);
    assert!(
        sdo.core.fp_sdo_issued > 50,
        "fmuls on gathered data must use FP-SDO: {}",
        sdo.core.fp_sdo_issued
    );
}
