//! Cross-crate differential tests: the out-of-order core must produce
//! exactly the golden model's architectural state under every protection
//! configuration — protections change timing, never function.

use sdo_rng::SdoRng;
use sdo_sim::harness::{SimConfig, Variant};
use sdo_sim::isa::{Interpreter, Program};
use sdo_sim::mem::MemorySystem;
use sdo_sim::uarch::{AttackModel, Core};
use sdo_sim::workloads::random::random_program;

fn check_program(prog: &Program, cfg: &SimConfig) {
    let mut golden = Interpreter::new(prog);
    golden.run(20_000_000).expect("golden model halts");
    for attack in AttackModel::ALL {
        for variant in Variant::ALL {
            let sec = variant.security(attack);
            let mut mem = MemorySystem::new(cfg.mem, 1);
            mem.load_image(prog.data());
            let mut core = Core::new(0, cfg.core, sec, prog.clone());
            core.run(&mut mem, cfg.max_cycles)
                .unwrap_or_else(|e| panic!("{} under {variant}/{attack}: {e}", prog.name()));
            assert_eq!(
                core.arch_int(),
                golden.int_regs(),
                "integer state diverged: {} under {variant}/{attack}",
                prog.name()
            );
            assert_eq!(
                core.arch_fp(),
                golden.fp_regs(),
                "fp state diverged: {} under {variant}/{attack}",
                prog.name()
            );
            for (addr, byte) in golden.mem_snapshot() {
                assert_eq!(
                    mem.backing().read_byte(addr),
                    byte,
                    "memory diverged at {addr:#x}: {} under {variant}/{attack}",
                    prog.name()
                );
            }
        }
    }
}

#[test]
fn random_programs_match_golden_on_table_i_machine() {
    let cfg = SimConfig::table_i();
    for seed in 0..8 {
        check_program(&random_program(seed, 10), &cfg);
    }
}

#[test]
fn random_programs_match_golden_on_tiny_machine() {
    // Small structures provoke stalls, squash corner cases and resource
    // exhaustion that the big machine hides.
    let cfg = SimConfig::tiny();
    for seed in 100..106 {
        check_program(&random_program(seed, 8), &cfg);
    }
}

/// Property: any generated program commits identical architectural state
/// on the OoO core (with the strongest protection) and the golden model.
#[test]
fn prop_sdo_hybrid_futuristic_is_functionally_transparent() {
    let mut rng = SdoRng::seed_from_u64(0xd1f_0000);
    for _ in 0..12 {
        let seed = rng.gen_range(0u64..10_000);
        let prog = random_program(seed, 6);
        let mut golden = Interpreter::new(&prog);
        golden.run(20_000_000).expect("golden halts");

        let cfg = SimConfig::tiny();
        let sec = Variant::Hybrid.security(AttackModel::Futuristic);
        let mut mem = MemorySystem::new(cfg.mem, 1);
        mem.load_image(prog.data());
        let mut core = Core::new(0, cfg.core, sec, prog.clone());
        core.run(&mut mem, cfg.max_cycles).expect("halts");
        assert_eq!(core.arch_int(), golden.int_regs(), "seed {seed}");
        assert_eq!(core.arch_fp(), golden.fp_regs(), "seed {seed}");
    }
}

/// Property: committed instruction counts are identical across all
/// variants (no instruction is lost or duplicated by protection).
#[test]
fn prop_commit_counts_invariant_across_variants() {
    let mut rng = SdoRng::seed_from_u64(0xd1f_0001);
    for _ in 0..12 {
        let seed = rng.gen_range(0u64..10_000);
        let prog = random_program(seed, 5);
        let cfg = SimConfig::tiny();
        let mut counts = Vec::new();
        for variant in [Variant::Unsafe, Variant::SttLdFp, Variant::StaticL1, Variant::Hybrid] {
            let mut mem = MemorySystem::new(cfg.mem, 1);
            mem.load_image(prog.data());
            let mut core =
                Core::new(0, cfg.core, variant.security(AttackModel::Spectre), prog.clone());
            core.run(&mut mem, cfg.max_cycles).expect("halts");
            counts.push(core.stats().committed);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "seed {seed}: commit counts {counts:?}");
    }
}
