//! Shape tests: the relative performance relations the paper's
//! evaluation establishes must hold in the reproduction (Section VIII-B).
//! Absolute numbers differ — the substrate is a from-scratch simulator —
//! but who wins, and why, must match.

use sdo_sim::harness::{RunRequest, RunResult, SimConfig, Simulator, Variant};
use sdo_sim::mem::CacheLevel;
use sdo_sim::uarch::AttackModel;
use sdo_sim::workloads::kernels::{hash_lookup, l1_resident, Workload};

/// One simulation through the single `RunRequest` entry point.
fn run(sim: &Simulator, w: &Workload, variant: Variant, attack: AttackModel) -> RunResult {
    sim.run(&RunRequest::workload(w).variant(variant).attack(attack)).unwrap().into_result()
}

/// A reduced hash_lookup: the suite's highest-overhead kernel.
fn probe_kernel() -> Workload {
    Workload::new("hash_lookup", hash_lookup(1 << 14, 1200, 5))
        .warmed(0x80_0000, (1 << 14) * 8, CacheLevel::L3)
}

#[test]
fn stt_pays_and_sdo_recovers() {
    let sim = Simulator::new(SimConfig::table_i());
    let w = probe_kernel();
    for attack in AttackModel::ALL {
        let unsafe_ = run(&sim, &w, Variant::Unsafe, attack);
        let stt = run(&sim, &w, Variant::SttLd, attack);
        let hybrid = run(&sim, &w, Variant::Hybrid, attack);
        let perfect = run(&sim, &w, Variant::Perfect, attack);
        assert!(
            stt.cycles as f64 > 1.5 * unsafe_.cycles as f64,
            "{attack}: STT must pay heavily on the MLP-killer kernel \
             (got {} vs {})",
            stt.cycles,
            unsafe_.cycles
        );
        assert!(
            hybrid.cycles < stt.cycles,
            "{attack}: STT+SDO (Hybrid) must outperform STT ({} vs {})",
            hybrid.cycles,
            stt.cycles
        );
        assert!(
            perfect.cycles <= hybrid.cycles * 101 / 100,
            "{attack}: Perfect bounds the achievable performance"
        );
        assert!(
            perfect.cycles > unsafe_.cycles,
            "{attack}: even Perfect keeps some overhead (Section VIII-B)"
        );
    }
}

#[test]
fn static_l1_squashes_most() {
    // Paper: "Static L1 has the highest overhead of any SDO variant ...
    // it also incurs more frequent squashes".
    let sim = Simulator::new(SimConfig::table_i());
    let w = probe_kernel();
    let l1 = run(&sim, &w, Variant::StaticL1, AttackModel::Futuristic);
    let l3 = run(&sim, &w, Variant::StaticL3, AttackModel::Futuristic);
    assert!(
        l1.core.squashes.obl_fail > l3.core.squashes.obl_fail,
        "L1 predictions on an L3-resident table must fail more ({} vs {})",
        l1.core.squashes.obl_fail,
        l3.core.squashes.obl_fail
    );
    assert!(l1.cycles > l3.cycles, "squashes cost time ({} vs {})", l1.cycles, l3.cycles);
}

#[test]
fn accuracy_orders_static_predictors() {
    // Paper Table III: deeper static predictions are more accurate, less
    // precise.
    let sim = Simulator::new(SimConfig::table_i());
    let w = probe_kernel();
    let mut accuracies = Vec::new();
    let mut precisions = Vec::new();
    for v in [Variant::StaticL1, Variant::StaticL2, Variant::StaticL3] {
        let r = run(&sim, &w, v, AttackModel::Spectre);
        accuracies.push(r.core.obl.accuracy());
        precisions.push(r.core.obl.precision());
    }
    assert!(
        accuracies.windows(2).all(|w| w[0] <= w[1] + 1e-9),
        "accuracy must grow with predicted depth: {accuracies:?}"
    );
    // Precision can never exceed accuracy (precise ⊂ accurate), and a
    // static predictor's precision is the fraction of loads resident at
    // exactly its level — bounded well below 1 on this mixed-residency
    // kernel.
    for (p, a) in precisions.iter().zip(&accuracies) {
        assert!(p <= a, "precision {p} cannot exceed accuracy {a}");
        assert!(*p < 0.9, "no static level covers a mixed-residency kernel: {precisions:?}");
    }
}

#[test]
fn perfect_predictor_never_fails_cache_predictions() {
    let sim = Simulator::new(SimConfig::table_i());
    let w = probe_kernel();
    let r = run(&sim, &w, Variant::Perfect, AttackModel::Spectre);
    assert_eq!(
        r.core.obl.fail, 0,
        "the oracle predictor must never produce a failing Obl-Ld"
    );
    assert_eq!(r.core.squashes.obl_fail, 0);
}

#[test]
fn protection_is_nearly_free_on_l1_resident_code() {
    // Paper Figure 6: compute-bound, L1-resident kernels see ~no
    // overhead under any variant.
    let sim = Simulator::new(SimConfig::table_i());
    let w = Workload::new("l1_resident", l1_resident(2000, 10));
    let base = run(&sim, &w, Variant::Unsafe, AttackModel::Futuristic);
    for variant in Variant::ALL {
        let r = run(&sim, &w, variant, AttackModel::Futuristic);
        let norm = r.cycles as f64 / base.cycles as f64;
        assert!(
            norm < 1.05,
            "{variant}: L1-resident kernel should be ~free, got {norm:.3}"
        );
    }
}

#[test]
fn futuristic_is_at_least_as_expensive_as_spectre_for_stt() {
    let sim = Simulator::new(SimConfig::table_i());
    let w = probe_kernel();
    let spectre = run(&sim, &w, Variant::SttLd, AttackModel::Spectre);
    let futuristic = run(&sim, &w, Variant::SttLd, AttackModel::Futuristic);
    assert!(
        futuristic.cycles >= spectre.cycles,
        "the Futuristic model delays longer ({} vs {})",
        futuristic.cycles,
        spectre.cycles
    );
}
