//! Cross-core covert-channel test (threat model §II: *CrossCore*): the
//! victim speculates on core 0; the attacker sits on core 1 and measures
//! load latencies to the probe array. A probe line the victim's doomed
//! transmit load pulled into the (shared, inclusive) L3 answers faster
//! than DRAM — leaking the secret across cores on the Unsafe baseline.

use sdo_sim::harness::{SimConfig, Variant};
use sdo_sim::mem::MemorySystem;
use sdo_sim::uarch::{AttackModel, Core};
use sdo_sim::workloads::spectre_v1_victim;

/// Runs the victim on core 0 of a 2-core system, then timing-probes the
/// probe array from core 1. Returns the byte values whose lines answered
/// faster than a DRAM access (excluding the trained byte).
fn cross_core_recovered(variant: Variant, attack: AttackModel) -> Vec<u8> {
    let scenario = spectre_v1_victim();
    let cfg = SimConfig::table_i();
    let mut mem = MemorySystem::new(cfg.mem, 2);
    mem.load_image(scenario.program.data());
    let mut victim = Core::new(0, cfg.core, variant.security(attack), scenario.program.clone());
    victim.run(&mut mem, cfg.max_cycles).expect("victim halts");

    // Attacker on core 1: time one load per probe line. Anything faster
    // than the fastest possible DRAM round trip must have been on chip.
    let dram_floor = cfg.mem.dram.row_hit_latency;
    let mut t = victim.now() + 1000;
    let mut recovered = Vec::new();
    for b in 0..=255u8 {
        let r = mem.load(1, scenario.probe_addr(b), t);
        t = r.complete_at + 50;
        if b != scenario.trained_byte && r.latency() < dram_floor {
            recovered.push(b);
        }
    }
    recovered
}

#[test]
fn cross_core_receiver_recovers_secret_on_unsafe() {
    let secret = spectre_v1_victim().secret;
    let recovered = cross_core_recovered(Variant::Unsafe, AttackModel::Spectre);
    assert_eq!(recovered, vec![secret], "shared-LLC timing must reveal exactly the secret");
}

#[test]
fn cross_core_receiver_defeated_by_stt_and_sdo() {
    for variant in [Variant::SttLd, Variant::SttLdFp, Variant::StaticL1, Variant::Hybrid, Variant::Perfect]
    {
        for attack in AttackModel::ALL {
            let recovered = cross_core_recovered(variant, attack);
            assert!(
                recovered.is_empty(),
                "{variant}/{attack} leaked {recovered:?} across cores"
            );
        }
    }
}
