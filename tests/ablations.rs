//! Design-choice assertions behind the paper's optimizations: these are
//! the claims the ablation benches quantify, enforced as inequalities.

use sdo_sim::harness::SimConfig;
use sdo_sim::mem::{CacheLevel, MemorySystem};
use sdo_sim::uarch::{AttackModel, Core, PredictorKind, Protection, SdoConfig, SecurityConfig};
use sdo_sim::workloads::kernels::{hash_lookup, Workload};

fn run_custom(w: &Workload, sdo: SdoConfig, attack: AttackModel) -> u64 {
    let cfg = SimConfig::table_i();
    let mut mem = MemorySystem::new(cfg.mem, 1);
    mem.load_image(w.program().data());
    for &(start, bytes, level) in w.prewarm_ranges() {
        mem.prewarm(0, start, bytes, level);
    }
    let sec = SecurityConfig { protection: Protection::Sdo(sdo), attack };
    let mut core = Core::new(0, cfg.core, sec, w.program().clone());
    core.run(&mut mem, cfg.max_cycles).expect("kernel completes");
    core.now()
}

fn probe_kernel() -> Workload {
    Workload::new("hash_lookup", hash_lookup(1 << 14, 1200, 5))
        .warmed(0x80_0000, (1 << 14) * 8, CacheLevel::L3)
}

#[test]
fn early_forwarding_does_not_hurt_and_usually_helps() {
    // Section V-C2: once safe, forwarding the first success early beats
    // waiting out the full response set.
    let w = probe_kernel();
    let mut sdo = SdoConfig::with_predictor(PredictorKind::Static(CacheLevel::L3));
    sdo.early_forward = true;
    let on = run_custom(&w, sdo, AttackModel::Spectre);
    sdo.early_forward = false;
    let off = run_custom(&w, sdo, AttackModel::Spectre);
    assert!(
        on <= off,
        "early forwarding must not slow things down ({on} vs {off})"
    );
}

#[test]
fn dram_delay_beats_clamp_to_l3_on_cold_data() {
    // Section VI-B: reverting DRAM predictions to delayed execution
    // avoids guaranteed-fail lookups and their squashes.
    let cold = Workload::new("hash_cold", hash_lookup(1 << 14, 800, 6)); // no prewarm
    let mut sdo = SdoConfig::with_predictor(PredictorKind::Hybrid);
    sdo.allow_dram_prediction = true;
    let delay = run_custom(&cold, sdo, AttackModel::Futuristic);
    sdo.allow_dram_prediction = false;
    let clamp = run_custom(&cold, sdo, AttackModel::Futuristic);
    assert!(
        delay <= clamp,
        "delaying DRAM-predicted loads must beat forcing fails ({delay} vs {clamp})"
    );
}

#[test]
fn predictor_choice_changes_behavior_not_results() {
    // Every predictor, including the pattern extension, produces the same
    // committed state; only the timing differs.
    let w = probe_kernel();
    let mut cycle_counts = Vec::new();
    for kind in [
        PredictorKind::Greedy,
        PredictorKind::Loop,
        PredictorKind::Hybrid,
        PredictorKind::Pattern,
        PredictorKind::Perfect,
    ] {
        cycle_counts.push(run_custom(&w, SdoConfig::with_predictor(kind), AttackModel::Spectre));
    }
    // Perfect bounds all of them from below (small tolerance for the
    // delayed-DRAM paths the oracle alone chooses).
    let perfect = *cycle_counts.last().unwrap();
    for (i, &c) in cycle_counts.iter().enumerate() {
        assert!(
            c * 100 >= perfect * 95,
            "predictor #{i} beat the oracle meaningfully: {c} vs {perfect}"
        );
    }
}
