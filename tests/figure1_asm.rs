//! The shipped sample assembly (`examples/programs/figure1.s` — the
//! paper's Figure 1) must assemble, run, and exhibit the leak/block
//! behaviour its comments promise.

use sdo_sim::harness::{RunRequest, SimConfig, Variant};
use sdo_sim::isa::parse_asm;
use sdo_sim::mem::CacheLevel;
use sdo_sim::uarch::AttackModel;

#[test]
fn shipped_figure1_leaks_on_unsafe_and_is_blocked_by_sdo() {
    let source = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/programs/figure1.s"
    ))
    .expect("sample program ships with the repo");
    let program = parse_asm(&source).expect("sample assembles");
    assert_eq!(program.name(), "figure1");

    let sim = sdo_sim::harness::Simulator::new(SimConfig::table_i());
    let probe_line_of = |b: u8| 0x100_0000 + u64::from(b) * 64;
    let secret = 42u8;

    let out = sim
        .run(&RunRequest::program(&program).variant(Variant::Unsafe).attack(AttackModel::Spectre))
        .expect("victim runs");
    assert_ne!(
        out.memory().residency(0, probe_line_of(secret)),
        CacheLevel::Dram,
        "Unsafe: the secret-encoding probe line must be cache-resident"
    );

    for variant in [Variant::SttLd, Variant::Hybrid, Variant::Perfect] {
        let out = sim
            .run(&RunRequest::program(&program).variant(variant).attack(AttackModel::Spectre))
            .expect("victim runs");
        assert_eq!(
            out.memory().residency(0, probe_line_of(secret)),
            CacheLevel::Dram,
            "{variant} must block the transmit"
        );
    }
}
