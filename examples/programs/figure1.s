; The paper's Figure 1, in sdo-sim text assembly: a bounds-checked array
; access whose misprediction window lets a transmit load leak `val`.
;
;   cargo run --release -p sdo-harness --bin run -- examples/programs/figure1.s --all
;
.name figure1
.byte 0x4000 0 0 0 0 0 0 0 0 0 0     ; uint8 A[10] = {0}
.byte 0x40c8 42                       ; the "secret", out of bounds
.word 0x5000 0                        ; attacker-controlled addr cell

    li   r1, 0x4000        ; &A
    li   r2, 0x1000000     ; probe array (transmit target)
    li   r6, 10000000000000
    li   r7, 10
    li   r10, 64           ; training iterations
train:
    andi r3, r10, 0x7      ; in-bounds index
    jal  r31, victim
    addi r10, r10, -1
    bne  r10, r0, train
    li   r3, 200           ; out-of-bounds: &secret - &A
    jal  r31, victim
    halt

victim:                    ; if (addr < bound) transmit(A[addr])
    divu r8, r6, r7        ; slowly recompute bound = 10
    divu r8, r8, r7
    divu r8, r8, r7
    divu r8, r8, r7
    divu r8, r8, r7
    divu r8, r8, r7
    divu r8, r8, r7
    divu r8, r8, r7
    divu r8, r8, r7
    divu r8, r8, r7
    divu r8, r8, r7
    divu r8, r8, r7
    blt  r3, r8, access
    jr   r31
access:
    add  r4, r1, r3
    ldb  r4, 0(r4)         ; the access: reads the secret when OOB
    slli r5, r4, 6         ; one probe line per byte value
    add  r5, r5, r2
    ld   r0, 0(r5)         ; the transmit: fills probe[val]
    jr   r31
