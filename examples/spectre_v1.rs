//! Runs the Spectre V1 attack (the paper's Figure 1 / Section VIII-A
//! penetration test) against every Table II variant and prints which
//! configurations leak the planted secret through the cache covert
//! channel.
//!
//! ```text
//! cargo run --release --example spectre_v1
//! ```

use sdo_sim::harness::experiments::{pentest, pentest_report};
use sdo_sim::harness::{RunRequest, SimConfig, Simulator};
use sdo_sim::mem::CacheLevel;
use sdo_sim::workloads::spectre_v1_victim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = spectre_v1_victim();
    println!(
        "Victim: {} static instructions; secret byte {:#04x} planted out of bounds.\n",
        scenario.program.len(),
        scenario.secret
    );

    let sim = Simulator::new(SimConfig::table_i());
    let outcomes = pentest(&sim)?;
    println!("{}", pentest_report(&outcomes));

    // Show the receiver's view for the insecure baseline.
    let out = sim.run(
        &RunRequest::program(&scenario.program)
            .variant(sdo_sim::harness::Variant::Unsafe)
            .attack(sdo_sim::uarch::AttackModel::Spectre),
    )?;
    println!("Receiver probe of the Unsafe run (byte -> residency):");
    for b in 0..=255u8 {
        let level = out.memory().residency(0, scenario.probe_addr(b));
        if level != CacheLevel::Dram && b != scenario.trained_byte {
            println!("  probe[{b:#04x}] resident in {level}  <-- recovered secret");
        }
    }
    Ok(())
}
