//! Explores the location predictors of Section V-D on synthetic access
//! patterns: feed each predictor a stream of (pc, actual-level) outcomes
//! and report precision (`predicted == actual`) and accuracy
//! (`predicted >= actual`) — the two metrics of Table III.
//!
//! ```text
//! cargo run --release --example predictor_explorer
//! ```

use sdo_sim::mem::CacheLevel;
use sdo_sim::sdo::predictor::{
    GreedyPredictor, HybridPredictor, LocationPredictor, LoopPredictor, PatternPredictor,
    StaticPredictor,
};

/// A synthetic per-PC access pattern.
struct Pattern {
    name: &'static str,
    levels: Vec<CacheLevel>,
}

fn patterns() -> Vec<Pattern> {
    use CacheLevel::{L1, L2, L3};
    let mut out = Vec::new();
    // Section V-D pattern 2: strided streaming, one deep hit per period.
    let mut strided = Vec::new();
    for i in 0..4000 {
        strided.push(if i % 8 == 7 { L2 } else { L1 });
    }
    out.push(Pattern { name: "strided 7xL1+L2", levels: strided });
    // Section V-D pattern 1: coarse phases.
    let mut phases = Vec::new();
    for p in 0..8 {
        let lvl = if p % 2 == 0 { L3 } else { L1 };
        phases.extend(std::iter::repeat_n(lvl, 500));
    }
    out.push(Pattern { name: "coarse phases", levels: phases });
    // Uniform deep residency.
    out.push(Pattern { name: "all L3", levels: vec![L3; 4000] });
    // Unpredictable mix.
    let mut mixed = Vec::new();
    let mut x = 12345u64;
    for _ in 0..4000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        mixed.push(match (x >> 33) % 10 {
            0..=5 => L1,
            6..=7 => L2,
            _ => L3,
        });
    }
    out.push(Pattern { name: "random mix", levels: mixed });
    out
}

fn evaluate(p: &mut dyn LocationPredictor, levels: &[CacheLevel]) -> (f64, f64) {
    let pc = 0x100;
    let (mut precise, mut accurate) = (0u32, 0u32);
    for &actual in levels {
        let pred = p.predict(pc, actual);
        precise += u32::from(pred == actual);
        accurate += u32::from(pred.depth() >= actual.depth());
        p.update(pc, actual);
    }
    let n = levels.len() as f64;
    (f64::from(precise) / n, f64::from(accurate) / n)
}

fn main() {
    println!(
        "{:18} {:12} {:>10} {:>10}",
        "pattern", "predictor", "precision", "accuracy"
    );
    println!("{}", "-".repeat(54));
    for pattern in patterns() {
        let mut predictors: Vec<Box<dyn LocationPredictor>> = vec![
            Box::new(StaticPredictor::new(CacheLevel::L1)),
            Box::new(StaticPredictor::new(CacheLevel::L2)),
            Box::new(StaticPredictor::new(CacheLevel::L3)),
            Box::new(GreedyPredictor::default()),
            Box::new(LoopPredictor::default()),
            Box::new(HybridPredictor::default()),
            Box::new(PatternPredictor::default()),
        ];
        for p in &mut predictors {
            let (precision, accuracy) = evaluate(p.as_mut(), &pattern.levels);
            println!(
                "{:18} {:12} {:>9.1}% {:>9.1}%",
                pattern.name,
                p.name(),
                100.0 * precision,
                100.0 * accuracy
            );
        }
        println!();
    }
    println!("Precision drives latency (deep predictions wait longer);");
    println!("accuracy drives squashes (under-predictions fail and squash).");
}
