//! Quickstart: write a tiny program with the assembler, run it on the
//! out-of-order core under the insecure baseline and under STT+SDO, and
//! compare the timing and statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sdo_sim::harness::{RunRequest, SimConfig, Simulator, Variant};
use sdo_sim::isa::{Assembler, Interpreter, Reg};
use sdo_sim::uarch::AttackModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bounds-checked indirect sum — the Figure-1 shape from the paper:
    // each iteration loads an index, checks it against a loaded bound and
    // (speculatively) uses it to index a second table.
    let mut asm = Assembler::named("quickstart");
    let table = 0x8000u64;
    for i in 0..64u64 {
        asm.data_mut().set_word(table + i * 8, (i * 37) % 64);
    }
    let r = Reg::new;
    let (base, idx, val, acc) = (r(1), r(2), r(3), r(7));
    asm.li(base, table as i64);
    let iter = r(10);
    asm.li(iter, 500);
    let esc = asm.label();
    let top = asm.here();
    asm.andi(idx, iter, 0x1f8);
    asm.add(idx, idx, base);
    asm.ld(val, idx, 0); // access instruction
    asm.blt(val, Reg::ZERO, esc); // bounds check on the loaded value
    asm.slli(r(4), val, 3);
    asm.add(r(4), r(4), base);
    asm.ld(r(5), r(4), 0); // transmit instruction (tainted address)
    asm.add(acc, acc, r(5));
    asm.addi(iter, iter, -1);
    asm.bne(iter, Reg::ZERO, top);
    asm.bind(esc);
    asm.halt();
    let program = asm.finish()?;

    // Golden model: the architectural answer.
    let mut interp = Interpreter::new(&program);
    interp.run(1_000_000)?;
    println!("architectural result: acc = {}", interp.reg(acc));

    // Simulate under three Table II variants.
    let sim = Simulator::new(SimConfig::table_i());
    for variant in [Variant::Unsafe, Variant::SttLd, Variant::Hybrid] {
        let res = sim
            .run(&RunRequest::program(&program).variant(variant).attack(AttackModel::Spectre))?
            .into_result();
        println!(
            "{:10} {:>7} cycles | IPC {:.2} | delayed loads {:>3} | Obl-Ld {:>3} | squashes {}",
            variant.name(),
            res.cycles,
            res.core.ipc(),
            res.core.delayed_loads,
            res.core.obl.issued,
            res.core.squashes.total(),
        );
    }
    println!("\nProtection never changes the answer — only the timing.");
    Ok(())
}
