//! Sweeps one benchmark kernel across every Table II variant and both
//! attack models — a single-kernel slice of Figure 6 with the full
//! statistics behind it.
//!
//! ```text
//! cargo run --release --example workload_sweep [kernel]
//! ```
//!
//! `kernel` defaults to `hash_lookup`; pass any suite kernel name
//! (`ptr_chase`, `stream`, `stride`, `mix_branchy`, `hash_lookup`,
//! `stencil`, `matmul_blocked`, `fp_subnormal`, `phase_shift`,
//! `l1_resident`).

use sdo_sim::harness::{RunRequest, SimConfig, Simulator, Variant};
use sdo_sim::uarch::AttackModel;
use sdo_sim::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "hash_lookup".to_string());
    let kernels = suite();
    let Some(workload) = kernels.iter().find(|w| w.name() == wanted) else {
        eprintln!(
            "unknown kernel '{wanted}'; available: {}",
            kernels.iter().map(|w| w.name()).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(1);
    };

    let sim = Simulator::new(SimConfig::table_i());
    for attack in AttackModel::ALL {
        println!("== {} under the {attack} model ==", workload.name());
        println!(
            "{:11} {:>9} {:>6} {:>8} {:>7} {:>6} {:>8} {:>9} {:>8}",
            "variant", "cycles", "norm", "IPC", "delayed", "obl", "obl-fail", "squashes", "val-stall"
        );
        let base = sim
            .run(&RunRequest::workload(workload).variant(Variant::Unsafe).attack(attack))?
            .into_result();
        for variant in Variant::ALL {
            let r = sim
                .run(&RunRequest::workload(workload).variant(variant).attack(attack))?
                .into_result();
            println!(
                "{:11} {:>9} {:>6.3} {:>8.2} {:>7} {:>6} {:>8} {:>9} {:>8}",
                variant.name(),
                r.cycles,
                r.normalized_to(&base),
                r.core.ipc(),
                r.core.delayed_loads,
                r.core.obl.issued,
                r.core.obl.fail,
                r.core.squashes.total(),
                r.core.obl.validation_stall_cycles,
            );
        }
        println!();
    }
    Ok(())
}
